//! The execution engine — JStar's improved incremental pseudo-naive
//! bottom-up evaluator (§3, §5).
//!
//! The tuple lifecycle (Fig. 3): a rule `put`s a tuple → it waits in the
//! Delta set → it is taken out "in an order that respects the causality
//! ordering", inserted into Gamma, and triggers applicable rules → later
//! rules may query it → (optionally) it is discarded via lifetime hints.
//!
//! Two modes mirror the paper's compiler flags:
//!
//! * **sequential** (`-sequential`): one thread, ordered stores;
//! * **parallel** (default): the *all-minimums strategy* — every tuple of
//!   the minimal Delta equivalence class is executed as a fork/join task on
//!   a [`jstar_pool::ThreadPool`] sized by `--threads=N`.
//!
//! Per-table optimisation flags are faithful to §5.1: `-noDelta T` sends
//! `T`'s tuples straight to Gamma and fires their rules immediately;
//! `-noGamma T` skips storing `T`'s tuples (they act as pure triggers).
//!
//! ## Hot-path architecture
//!
//! The put→Delta→Gamma pipeline is built to add **zero coordinator-side
//! contention** per tuple, and to keep the coordinator itself off the
//! critical path for everything but the final graft:
//!
//! 1. **Partition-aware sharded staging** — a worker `put` appends
//!    `(OrderKey, Tuple)` to its own [`crate::delta::ShardedInbox`]
//!    shard, routed by the pool's stable
//!    [`jstar_pool::ThreadPool::current_worker_index`]. The shard bins
//!    the entry by a hash of the key's leading components as it arrives
//!    (the prefix depth is derived from the program's orderby schema at
//!    engine construction — deep enough to reach the first
//!    tuple-dependent `seq` level), so the coordinator never runs a
//!    binning pass. No worker ever touches another worker's shard; the
//!    original design funnelled every put through one shared MPMC queue
//!    head. The inbox's per-step empty poll is one relaxed atomic load.
//! 2. **Partitioned parallel drain** — between steps the coordinator
//!    swaps all shard bins out as per-partition runs
//!    ([`crate::delta::ShardedInbox::drain_partitions`], the *partition*
//!    phase) and merges them with
//!    [`crate::delta::DeltaTree::merge_partitioned`] (the *merge*
//!    phase): pool workers build one independent subtree per key-prefix
//!    partition in parallel, and the coordinator grafts them — splicing
//!    disjoint subtrees wholesale — so its serial share shrinks from
//!    per-tuple tree inserts to per-shared-node merges. Batches under
//!    [`EngineConfig::parallel_merge_threshold`] (and every sequential
//!    run) take the plain insert loop instead; either way the resulting
//!    tree, and therefore the `pop_min_class` schedule, is identical to
//!    sequential insertion. Per-table statistics accumulate in a local
//!    scratch array and publish with **one** atomic update per table.
//! 3. **Reservation-based Gamma inserts** — the parallel store defaults
//!    ([`crate::gamma::ConcurrentOrderedStore`],
//!    [`crate::gamma::HashStore`]) publish tuples via CAS slot
//!    reservation (claim an empty slot, write, release-publish) instead
//!    of per-shard writer locks, removing the last lock on the tuple
//!    hot path; readers never observe partial state.
//! 4. **Borrowed trigger keys** — `process_tuple` and [`RuleCtx`] borrow
//!    the equivalence class's `OrderKey`; triggering a rule no longer
//!    clones the key (the old code cloned it per triggered rule). Tables
//!    whose orderby yields a constant key (pure-stratum orderings like
//!    PvWatts') get that key interned once in their [`QueryPlan`].
//! 5. **Per-table query plans and bind-slot prepared queries** — each
//!    table's resolved orderby extractor and its store's index-selection
//!    decision (`covers_fields` over the hash store's index fields) are
//!    cached in a [`QueryPlan`] computed once at engine construction,
//!    instead of being re-derived inside every `ctx.query`; rules whose
//!    queries differ only in trigger-derived values intern them once
//!    with placeholder slots ([`crate::relation::TypedQuery::bind_eq`])
//!    and patch the slots in place per invocation
//!    ([`RuleCtx::for_each_bound`] and friends) — no per-call constraint
//!    vectors, no per-call allocation.
//! 6. **Adaptive all-minimums scheduling** — classes at or below
//!    [`EngineConfig::inline_class_threshold`] execute inline on the
//!    coordinator (fork/join overhead exceeds the work), wider classes are
//!    chunked by measured class width and submitted as one batch
//!    ([`jstar_pool::Scope::spawn_batch`], a single wakeup). Data-parallel
//!    loops *inside* rule bodies ([`RuleCtx::par_for_each_match`] and the
//!    `jstar_pool::parallel_*` helpers) additionally coarsen their chunks
//!    when the pool already has a backlog
//!    ([`jstar_pool::ThreadPool::pending_jobs`]), since fine splits behind
//!    a backlog buy no parallelism.

use crate::delta::{DeltaKind, DeltaQueue, ShardedInbox};
use crate::error::{JStarError, Result};
use crate::gamma::{Gamma, InsertOutcome, StoreKind, TableStore};
use crate::orderby::{OrderKey, ResolvedComponent, ResolvedOrderBy};
use crate::program::Program;
use crate::query::Query;
use crate::reduce::Reducer;
use crate::relation::{Field, PreparedQuery, Relation, TableHandle, TypedQuery};
use crate::schema::TableId;
use crate::stats::{EngineStats, StepRecord};
use crate::tuple::Tuple;
use jstar_pool::ThreadPool;
use parking_lot::Mutex;
use std::cmp::Ordering as CmpOrdering;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A tuple-lifetime predicate (§5 step 4): returns true to keep a tuple.
pub type LifetimeHint = Arc<dyn Fn(&Tuple) -> bool + Send + Sync>;

/// Engine configuration — the paper's compiler flags and runtime options,
/// kept *outside* the program source (workflow stages 3–4).
#[derive(Clone)]
pub struct EngineConfig {
    /// `-sequential`: single-threaded execution with sequential stores.
    pub sequential: bool,
    /// `--threads=N`: fork/join pool size for parallel execution.
    pub threads: usize,
    /// `-noDelta T` tables: bypass the Delta tree.
    pub no_delta: Vec<TableId>,
    /// `-noGamma T` tables: never stored in Gamma.
    pub no_gamma: Vec<TableId>,
    /// Per-table store overrides (the paper's data-structure hints).
    pub stores: HashMap<TableId, StoreKind>,
    /// Check field types on every put (cheap; on by default).
    pub type_check: bool,
    /// Check the Law of Causality on every put (on by default; §4).
    pub enforce_causality: bool,
    /// Record a per-step log for parallelism profiling.
    pub record_steps: bool,
    /// Abort after this many steps — a guard for accidentally non-causal
    /// infinite programs like §3's unconditional Ship rule.
    pub max_steps: Option<u64>,
    /// Share an existing pool instead of creating one per engine.
    pub pool: Option<Arc<ThreadPool>>,
    /// Which Delta structure to use (the tree of the paper, or the flat
    /// ordered map kept as an ablation).
    pub delta: DeltaKind,
    /// Tuple-lifetime hints (§5 step 4): after every `hint_interval` steps
    /// the engine drops tuples the hook rejects from the table's Gamma
    /// store. "We simply retain all tuples, or use manual lifetime hints
    /// from the user to determine when tuples can be discarded."
    pub lifetime_hints: Vec<(TableId, LifetimeHint)>,
    /// How often (in steps) lifetime hints run; 0 disables them.
    pub hint_interval: u64,
    /// Classes of at most this many tuples execute inline on the
    /// coordinator instead of being forked to the pool: below this width
    /// the fork/join round trip costs more than the work. Ignored in
    /// sequential mode (everything is inline there).
    pub inline_class_threshold: usize,
    /// Staged batches of at least this many tuples are merged into the
    /// Delta queue by pool workers (one subtree per key-prefix
    /// partition, grafted by the coordinator); smaller batches take the
    /// sequential insert loop, whose per-tuple cost is below the
    /// fork/join round trip at that size. Ignored in sequential mode.
    pub parallel_merge_threshold: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            sequential: false,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            no_delta: Vec::new(),
            no_gamma: Vec::new(),
            stores: HashMap::new(),
            type_check: true,
            enforce_causality: true,
            record_steps: false,
            max_steps: None,
            pool: None,
            delta: DeltaKind::Tree,
            lifetime_hints: Vec::new(),
            hint_interval: 0,
            inline_class_threshold: 4,
            parallel_merge_threshold: 1024,
        }
    }
}

impl EngineConfig {
    /// Sequential configuration (the `-sequential` flag).
    pub fn sequential() -> Self {
        EngineConfig {
            sequential: true,
            threads: 1,
            ..Default::default()
        }
    }

    /// Parallel configuration with `n` fork/join threads.
    pub fn parallel(n: usize) -> Self {
        EngineConfig {
            sequential: false,
            threads: n.max(1),
            ..Default::default()
        }
    }

    /// Adds a `-noDelta` table.
    pub fn no_delta(mut self, t: TableId) -> Self {
        self.no_delta.push(t);
        self
    }

    /// Adds a `-noGamma` table.
    pub fn no_gamma(mut self, t: TableId) -> Self {
        self.no_gamma.push(t);
        self
    }

    /// Overrides the Gamma store for one table.
    pub fn store(mut self, t: TableId, kind: StoreKind) -> Self {
        self.stores.insert(t, kind);
        self
    }

    /// Enables the per-step parallelism log.
    pub fn record_steps(mut self) -> Self {
        self.record_steps = true;
        self
    }

    /// Sets the runaway-program step guard.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = Some(n);
        self
    }

    /// Selects the Delta structure (ablation knob).
    pub fn delta_kind(mut self, kind: DeltaKind) -> Self {
        self.delta = kind;
        self
    }

    /// Sets the maximum class width executed inline on the coordinator.
    /// 0 forks every multi-tuple class (the pre-adaptive behaviour).
    pub fn inline_classes_up_to(mut self, width: usize) -> Self {
        self.inline_class_threshold = width;
        self
    }

    /// Sets the staged-batch size at which the coordinator hands the
    /// Delta merge to pool workers. `usize::MAX` forces the sequential
    /// insert loop (the pre-partitioned behaviour); `0`/`1` parallelises
    /// every multi-partition batch.
    pub fn parallel_merge_from(mut self, batch: usize) -> Self {
        self.parallel_merge_threshold = batch;
        self
    }

    /// Registers a tuple-lifetime hint for `table`: every `interval` steps,
    /// tuples the hook rejects are discarded from Gamma (§5 step 4 — the
    /// manual garbage-collection hints).
    pub fn lifetime_hint(
        mut self,
        table: TableId,
        interval: u64,
        keep: impl Fn(&Tuple) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.lifetime_hints.push((table, Arc::new(keep)));
        self.hint_interval = interval.max(1);
        self
    }
}

/// Per-table hot-path cache, computed once at engine construction.
///
/// Consolidates everything `put` and `query` would otherwise re-derive per
/// call: the resolved orderby key extractor, the interned key for tables
/// whose ordering is tuple-independent (pure-stratum orderbys — every
/// tuple of the table shares one Delta equivalence class), and the store's
/// index-selection data (`covers_fields` input).
pub struct QueryPlan {
    /// The table's resolved orderby list (the key extractor).
    orderby: ResolvedOrderBy,
    /// Interned order key when the orderby has no tuple-dependent
    /// component; such tables form a single delta class per run.
    const_key: Option<OrderKey>,
    /// Fields the table's Gamma store is hash-indexed on, if any.
    index_fields: Option<Box<[usize]>>,
}

impl QueryPlan {
    fn new(orderby: &ResolvedOrderBy, store: &dyn crate::gamma::TableStore) -> QueryPlan {
        let tuple_independent = orderby
            .components
            .iter()
            .all(|c| !matches!(c, ResolvedComponent::Seq { .. }));
        let const_key = tuple_independent.then(|| {
            let mut parts = Vec::new();
            for c in &orderby.components {
                match c {
                    ResolvedComponent::Strat { rank, .. } => {
                        parts.push(crate::orderby::KeyPart::Strat(*rank))
                    }
                    ResolvedComponent::Seq { .. } => unreachable!("tuple-independent"),
                    ResolvedComponent::Par { .. } => break,
                }
            }
            OrderKey(parts)
        });
        QueryPlan {
            orderby: orderby.clone(),
            const_key,
            index_fields: store.index_fields().map(|f| f.to_vec().into_boxed_slice()),
        }
    }

    /// The order key of `t` — a clone of the interned key when the table's
    /// ordering is tuple-independent, a fresh extraction otherwise.
    #[inline]
    pub fn key_for(&self, t: &Tuple) -> OrderKey {
        match &self.const_key {
            Some(k) => k.clone(),
            None => self.orderby.key_of(t),
        }
    }

    /// True when `q` binds every indexed field of the table's store with an
    /// equality constraint — the cached index-selection decision.
    #[inline]
    pub fn query_uses_index(&self, q: &Query) -> bool {
        match &self.index_fields {
            Some(fields) => q.covers_fields(fields),
            None => false,
        }
    }
}

/// Shared run-time state, accessible from worker threads.
pub(crate) struct RunState {
    program: Arc<Program>,
    gamma: Gamma,
    inbox: ShardedInbox,
    plans: Vec<QueryPlan>,
    no_delta: Vec<bool>,
    no_gamma: Vec<bool>,
    type_check: bool,
    enforce_causality: bool,
    output: Mutex<Vec<String>>,
    errors: Mutex<Vec<JStarError>>,
    stats: EngineStats,
    pool: Option<Arc<ThreadPool>>,
}

impl RunState {
    fn record_error(&self, e: JStarError) {
        self.errors.lock().push(e);
    }

    fn has_errors(&self) -> bool {
        !self.errors.lock().is_empty()
    }

    /// The staging shard for the calling thread: the worker's stable index
    /// on pool threads, the external shard everywhere else.
    #[inline]
    fn staging_shard(&self) -> usize {
        self.pool
            .as_ref()
            .and_then(|p| p.current_worker_index())
            .unwrap_or_else(|| self.inbox.external_shard())
    }
}

/// The context a rule body receives: its window onto the database.
///
/// All queries see only tuples already moved into Gamma — i.e. tuples that
/// are causally at-or-before the trigger — which is exactly why negative
/// and aggregate query results are stable (§4).
pub struct RuleCtx<'a> {
    state: &'a RunState,
    /// Borrowed from the executing equivalence class — constructing a
    /// context per triggered rule copies nothing.
    trigger_key: &'a OrderKey,
    rule: &'a str,
}

impl<'a> RuleCtx<'a> {
    /// The causal position of the trigger tuple.
    pub fn trigger_key(&self) -> &OrderKey {
        self.trigger_key
    }

    /// The name of the executing rule (diagnostics).
    pub fn rule_name(&self) -> &str {
        self.rule
    }

    /// Looks up a table id by name.
    pub fn table(&self, name: &str) -> TableId {
        self.state
            .program
            .table_id(name)
            .unwrap_or_else(|| panic!("unknown table {name}"))
    }

    /// Puts a new tuple into the database (§3). The tuple is placed in the
    /// Delta set (or sent straight to Gamma for `-noDelta` tables). The Law
    /// of Causality is enforced: the tuple's order key must not precede the
    /// trigger's.
    pub fn put(&self, t: Tuple) {
        put_tuple(self.state, self.trigger_key, self.rule, t);
    }

    /// Collects all Gamma tuples matching `q` (a positive query).
    pub fn query(&self, q: &Query) -> Vec<Tuple> {
        let Some(use_index) = self.count_query(q) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        self.state.gamma.query_hinted(q, use_index, &mut |t| {
            out.push(t.clone());
            true
        });
        out
    }

    /// Streams Gamma tuples matching `q`; return `false` to stop early.
    pub fn query_for_each(&self, q: &Query, mut f: impl FnMut(&Tuple) -> bool) {
        let Some(use_index) = self.count_query(q) else {
            return;
        };
        self.state.gamma.query_hinted(q, use_index, &mut f);
    }

    /// True if some tuple matches (positive existence).
    pub fn exists(&self, q: &Query) -> bool {
        let Some(use_index) = self.count_query(q) else {
            return false;
        };
        let mut found = false;
        self.state.gamma.query_hinted(q, use_index, &mut |_| {
            found = true;
            false
        });
        found
    }

    /// Negative query: true if *no* tuple matches — the paper's
    /// `get uniq? T(...) == null` pattern. Sound only when the queried
    /// region is causally before the trigger, which static checking
    /// verifies (§4).
    pub fn none(&self, q: &Query) -> bool {
        !self.exists(q)
    }

    /// Returns the unique match, if any (`get uniq?`).
    pub fn get_uniq(&self, q: &Query) -> Option<Tuple> {
        let use_index = self.count_query(q)?;
        let mut found = None;
        self.state.gamma.query_hinted(q, use_index, &mut |t| {
            found = Some(t.clone());
            false
        });
        found
    }

    /// Aggregate query: folds every match through `reducer`.
    pub fn reduce<R: Reducer>(&self, q: &Query, reducer: &R) -> R::Acc {
        let Some(use_index) = self.count_query(q) else {
            return reducer.identity();
        };
        if !self.check_reducer_field(q, reducer) {
            return reducer.identity();
        }
        let mut acc = reducer.identity();
        self.state.gamma.query_hinted(q, use_index, &mut |t| {
            reducer.accept(&mut acc, t);
            true
        });
        acc
    }

    /// `get min T(...)` over an integer field (§4's example rule uses
    /// `get min Tuple1(queryArgs)`).
    pub fn min_int(&self, q: &Query, field: usize) -> Option<i64> {
        self.reduce(q, &crate::reduce::MinIntReducer { field })
    }

    /// `get max T(...)` over an integer field.
    pub fn max_int(&self, q: &Query, field: usize) -> Option<i64> {
        self.reduce(q, &crate::reduce::MaxIntReducer { field })
    }

    /// Counts matching tuples.
    pub fn count(&self, q: &Query) -> u64 {
        self.reduce(q, &crate::reduce::CountReducer)
    }

    /// §5.2 "additional parallelism": runs `f` over every match of `q` in
    /// parallel on the engine pool. Sound because JStar rule loops "that
    /// do not use a reducer object \[are\] known to have independent loop
    /// bodies" — the language has no mutable variables. Falls back to
    /// sequential iteration in `-sequential` mode.
    pub fn par_for_each_match(&self, q: &Query, f: impl Fn(&Tuple) + Send + Sync) {
        let matches = self.query(q);
        match &self.state.pool {
            Some(pool) if matches.len() > 1 => {
                jstar_pool::parallel_chunks(pool, &matches, 0, |chunk, _| {
                    for t in chunk {
                        f(t);
                    }
                });
            }
            _ => {
                for t in &matches {
                    f(t);
                }
            }
        }
    }

    /// §5.2 "additional parallelism": aggregate query evaluated with a
    /// parallel tree reduction ("loops that do involve a reducer object
    /// could also be executed in parallel, with a tree-based pass to
    /// combine the final reducer results").
    pub fn reduce_parallel<R: Reducer>(&self, q: &Query, reducer: &R) -> R::Acc {
        if !self.check_reducer_field(q, reducer) {
            return reducer.identity();
        }
        match &self.state.pool {
            Some(pool) => {
                let matches = self.query(q);
                crate::reduce::reduce_par(pool, reducer, &matches)
            }
            None => self.reduce(q, reducer),
        }
    }

    /// Emits one line of program output. Output is collected per run; the
    /// paper notes tuple/output *order* is not part of the deterministic
    /// semantics, so tests compare output as multisets.
    pub fn println(&self, msg: impl Into<String>) {
        self.state.output.lock().push(msg.into());
    }

    /// Direct access to a table's Gamma store — the analog of the paper's
    /// `unsafe` code blocks used to implement system rules and custom
    /// native-array stores (Median's `double[2][N]`, MatrixMult's 2-D
    /// arrays). Downcast with [`TableStore::as_any`].
    pub fn store(&self, table: TableId) -> &Arc<dyn TableStore> {
        self.state.gamma.store(table)
    }

    /// The fork/join pool, when running in parallel mode — lets rule bodies
    /// parallelise their independent internal loops (§5.2 notes JStar loops
    /// are data-parallel because variables are immutable).
    pub fn pool(&self) -> Option<&Arc<ThreadPool>> {
        self.state.pool.as_ref()
    }

    /// Records an application-level error, aborting the run.
    pub fn fail(&self, msg: impl Into<String>) {
        self.state.record_error(JStarError::Other(msg.into()));
    }

    /// Counts the query, validates its field indexes against the table
    /// schema, and returns the table plan's index-selection decision —
    /// computed once here and passed down to the store, which no longer
    /// re-derives it per call. `None` means the query named a field the
    /// table does not have: the error is recorded (failing the run) and
    /// the query reports no matches instead of panicking in a store.
    fn count_query(&self, q: &Query) -> Option<bool> {
        let ti = q.table.index();
        if let Err(e) = q.validate(self.state.program.def(q.table)) {
            self.state.record_error(e);
            return None;
        }
        let stats = &self.state.stats.tables[ti];
        stats.queries.fetch_add(1, Ordering::Relaxed);
        let use_index = self.state.plans[ti].query_uses_index(q);
        if use_index {
            stats.queries_indexed.fetch_add(1, Ordering::Relaxed);
        }
        Some(use_index)
    }

    /// Validates a reducer's input field against the queried table's
    /// arity — the aggregate counterpart of the query-constraint check
    /// in [`RuleCtx::count_query`]. Records
    /// [`JStarError::NoSuchField`] and returns false when out of
    /// bounds, so the fold never reaches a store with a bad index.
    fn check_reducer_field<R: Reducer>(&self, q: &Query, reducer: &R) -> bool {
        match reducer.input_field() {
            Some(f) if f >= self.state.program.def(q.table).arity() => {
                self.state.record_error(JStarError::NoSuchField {
                    table: self.state.program.def(q.table).name.clone(),
                    field: format!("#{f}"),
                });
                false
            }
            _ => true,
        }
    }

    // ── Typed entry points ──────────────────────────────────────────
    //
    // The façade of [`crate::relation`]: the same operations as the
    // positional methods above, but relations in and out. Each method
    // resolves `R`'s table once (a linear scan over the program's
    // handful of registrations — cheaper than the per-call string
    // lookup `ctx.table("...")` the positional style encouraged) and
    // lowers the typed query by moving its vectors, so nothing below
    // this layer changes.

    /// The typed handle for relation `R` (panics if unregistered).
    pub fn rel<R: Relation>(&self) -> TableHandle<R> {
        self.state.program.handle::<R>()
    }

    /// Typed [`RuleCtx::put`]: encodes `row` and puts it.
    pub fn put_rel<R: Relation>(&self, row: R) {
        let id = self.rel::<R>().id();
        self.put(Tuple::new(id, row.into_values()));
    }

    /// Typed [`RuleCtx::query`]: collects and decodes every match.
    pub fn query_rel<R: Relation>(&self, q: TypedQuery<R>) -> Vec<R> {
        let q = q.lower(self.rel::<R>());
        let mut out = Vec::new();
        self.query_for_each(&q, |t| {
            out.push(R::from_tuple(t));
            true
        });
        out
    }

    /// Typed [`RuleCtx::query_for_each`]: streams decoded matches;
    /// return `false` to stop early.
    pub fn for_each_rel<R: Relation>(&self, q: TypedQuery<R>, mut f: impl FnMut(R) -> bool) {
        let q = q.lower(self.rel::<R>());
        self.query_for_each(&q, |t| f(R::from_tuple(t)));
    }

    /// Typed [`RuleCtx::exists`].
    pub fn exists_rel<R: Relation>(&self, q: TypedQuery<R>) -> bool {
        let q = q.lower(self.rel::<R>());
        self.exists(&q)
    }

    /// Typed [`RuleCtx::none`] — the `get uniq? R(...) == null` pattern.
    pub fn none_rel<R: Relation>(&self, q: TypedQuery<R>) -> bool {
        !self.exists_rel(q)
    }

    /// Typed [`RuleCtx::get_uniq`].
    pub fn get_uniq_rel<R: Relation>(&self, q: TypedQuery<R>) -> Option<R> {
        let q = q.lower(self.rel::<R>());
        self.get_uniq(&q).map(|t| R::from_tuple(&t))
    }

    /// Typed [`RuleCtx::reduce`]: aggregates without decoding rows —
    /// reducers address fields via [`Field::index`].
    pub fn reduce_rel<R: Relation, Red: Reducer>(
        &self,
        q: TypedQuery<R>,
        reducer: &Red,
    ) -> Red::Acc {
        let q = q.lower(self.rel::<R>());
        self.reduce(&q, reducer)
    }

    /// Typed [`RuleCtx::count`].
    pub fn count_rel<R: Relation>(&self, q: TypedQuery<R>) -> u64 {
        let q = q.lower(self.rel::<R>());
        self.count(&q)
    }

    /// Typed `get min` over an integer field.
    pub fn min_int_rel<R: Relation>(&self, q: TypedQuery<R>, field: Field<R, i64>) -> Option<i64> {
        let q = q.lower(self.rel::<R>());
        self.min_int(&q, field.index())
    }

    /// Typed `get max` over an integer field.
    pub fn max_int_rel<R: Relation>(&self, q: TypedQuery<R>, field: Field<R, i64>) -> Option<i64> {
        let q = q.lower(self.rel::<R>());
        self.max_int(&q, field.index())
    }

    /// Collects and decodes the matches of a [`PreparedQuery`] — the
    /// reuse point for constraint vectors interned once per rule.
    /// Panics on a query with bind slots (its placeholders would
    /// silently match nothing real — use [`RuleCtx::query_bound`]).
    pub fn query_prepared<R: Relation>(&self, q: &PreparedQuery<R>) -> Vec<R> {
        assert_eq!(
            q.slot_count(),
            0,
            "a prepared query with bind slots must be invoked through the *_bound entry points"
        );
        let mut out = Vec::new();
        self.query_for_each(q.as_query(), |t| {
            out.push(R::from_tuple(t));
            true
        });
        out
    }

    /// Aggregates over a [`PreparedQuery`] without decoding rows.
    /// Panics on a query with bind slots (use [`RuleCtx::reduce_bound`]).
    pub fn reduce_prepared<R: Relation, Red: Reducer>(
        &self,
        q: &PreparedQuery<R>,
        reducer: &Red,
    ) -> Red::Acc {
        assert_eq!(
            q.slot_count(),
            0,
            "a prepared query with bind slots must be invoked through the *_bound entry points"
        );
        self.reduce(q.as_query(), reducer)
    }

    // ── Bind-slot entry points ──────────────────────────────────────
    //
    // Invocations of a [`PreparedQuery`] built with `bind_*` slots:
    // `values` (in bind order) are patched into a per-thread cached
    // copy of the query — the rule's inner loop stops rebuilding its
    // eq/range vectors and stops allocating per call. See
    // [`crate::relation::TypedQuery::bind_eq`].

    /// Bound [`RuleCtx::query_prepared`]: collects and decodes matches.
    pub fn query_bound<R: Relation>(
        &self,
        q: &PreparedQuery<R>,
        values: &[crate::value::Value],
    ) -> Vec<R> {
        q.with_bound(values, |q| {
            let mut out = Vec::new();
            self.query_for_each(q, |t| {
                out.push(R::from_tuple(t));
                true
            });
            out
        })
    }

    /// Bound streaming query; return `false` to stop early.
    pub fn for_each_bound<R: Relation>(
        &self,
        q: &PreparedQuery<R>,
        values: &[crate::value::Value],
        mut f: impl FnMut(R) -> bool,
    ) {
        q.with_bound(values, |q| {
            self.query_for_each(q, |t| f(R::from_tuple(t)));
        })
    }

    /// Bound positive existence test.
    pub fn exists_bound<R: Relation>(
        &self,
        q: &PreparedQuery<R>,
        values: &[crate::value::Value],
    ) -> bool {
        q.with_bound(values, |q| self.exists(q))
    }

    /// Bound negative query — the `get uniq? R(trigger.v) == null`
    /// pattern of the Dijkstra inner loop.
    pub fn none_bound<R: Relation>(
        &self,
        q: &PreparedQuery<R>,
        values: &[crate::value::Value],
    ) -> bool {
        !self.exists_bound(q, values)
    }

    /// Bound [`RuleCtx::get_uniq`].
    pub fn get_uniq_bound<R: Relation>(
        &self,
        q: &PreparedQuery<R>,
        values: &[crate::value::Value],
    ) -> Option<R> {
        q.with_bound(values, |q| self.get_uniq(q).map(|t| R::from_tuple(&t)))
    }

    /// Bound aggregate without decoding rows.
    pub fn reduce_bound<R: Relation, Red: Reducer>(
        &self,
        q: &PreparedQuery<R>,
        values: &[crate::value::Value],
        reducer: &Red,
    ) -> Red::Acc {
        q.with_bound(values, |q| self.reduce(q, reducer))
    }
}

/// Core put path, shared by `RuleCtx::put`, initial puts and injected
/// event tuples. The trigger key is borrowed; the computed key for `t`
/// moves into the staging shard without further copies.
fn put_tuple(state: &RunState, trigger_key: &OrderKey, rule: &str, t: Tuple) {
    let table = t.table();
    let ti = table.index();
    state.stats.tables[ti].puts.fetch_add(1, Ordering::Relaxed);

    if state.type_check {
        if let Err(msg) = state.program.def(table).type_check(t.fields()) {
            state.record_error(JStarError::Type(msg));
            return;
        }
    }

    let key = state.plans[ti].key_for(&t);
    if state.enforce_causality && trigger_key.cmp(&key) == CmpOrdering::Greater {
        state.record_error(JStarError::CausalityViolation {
            rule: rule.to_string(),
            trigger_key: trigger_key.clone(),
            put_key: key,
            tuple: t.to_string(),
        });
        return;
    }

    if state.no_delta[ti] {
        // §5.1: put straight into Gamma and fire triggered rules
        // immediately on this thread.
        process_tuple(state, &key, t);
    } else {
        state.inbox.push(state.staging_shard(), key, t);
    }
}

/// Moves one tuple out of the Delta set: inserts it into Gamma (unless
/// `-noGamma`), and if it is fresh, fires every rule it triggers. `key`
/// is borrowed from the executing class — rule contexts borrow it too,
/// so triggering N rules performs zero key clones.
fn process_tuple(state: &RunState, key: &OrderKey, t: Tuple) {
    let table = t.table();
    let ti = table.index();
    let fresh = if state.no_gamma[ti] {
        true
    } else {
        match state.gamma.insert(t.clone()) {
            InsertOutcome::Fresh => {
                state.stats.tables[ti]
                    .gamma_fresh
                    .fetch_add(1, Ordering::Relaxed);
                true
            }
            InsertOutcome::Duplicate => {
                // Set-oriented semantics: duplicates neither re-trigger
                // rules nor re-enter Gamma (§6.2's SumMonth dedup).
                state.stats.tables[ti]
                    .gamma_dups
                    .fetch_add(1, Ordering::Relaxed);
                false
            }
            InsertOutcome::KeyConflict => {
                state.record_error(JStarError::KeyViolation {
                    table: state.program.def(table).name.clone(),
                    detail: format!("insert of {t} violates the -> key invariant"),
                });
                false
            }
        }
    };
    if !fresh {
        return;
    }
    state.stats.tables[ti].triggers.fetch_add(
        state.program.rules_by_trigger()[ti].len() as u64,
        Ordering::Relaxed,
    );
    fire_rules(state, key, &t);
}

/// Fires every rule triggered by `t` (which must be fresh). Contexts
/// borrow the class key — zero copies per trigger.
fn fire_rules(state: &RunState, key: &OrderKey, t: &Tuple) {
    let ti = t.table().index();
    for &ri in &state.program.rules_by_trigger()[ti] {
        let rule = &state.program.rules()[ri];
        let ctx = RuleCtx {
            state,
            trigger_key: key,
            rule: &rule.name,
        };
        (rule.body)(&ctx, t);
    }
}

/// Executes one chunk of an equivalence class on a worker.
///
/// Uniform-table chunks (the overwhelmingly common case — a class is one
/// key, and most keys belong to one table) take the batch path: a single
/// [`Gamma::insert_batch`] call amortises store locking, statistics are
/// published once per chunk, and rules fire afterwards for the fresh
/// tuples. Mixed-table chunks fall back to the per-tuple path.
fn process_class_chunk(state: &RunState, key: &OrderKey, chunk: &[Tuple]) {
    let table = chunk[0].table();
    let ti = table.index();
    let uniform =
        chunk.len() > 1 && !state.no_gamma[ti] && chunk.iter().all(|t| t.table() == table);
    if !uniform {
        for t in chunk {
            process_tuple(state, key, t.clone());
        }
        return;
    }

    let mut outcomes = Vec::with_capacity(chunk.len());
    state.gamma.insert_batch(table, chunk, &mut outcomes);
    let (mut fresh, mut dups) = (0u64, 0u64);
    for (t, outcome) in chunk.iter().zip(&outcomes) {
        match outcome {
            InsertOutcome::Fresh => fresh += 1,
            InsertOutcome::Duplicate => dups += 1,
            InsertOutcome::KeyConflict => {
                state.record_error(JStarError::KeyViolation {
                    table: state.program.def(table).name.clone(),
                    detail: format!("insert of {t} violates the -> key invariant"),
                });
            }
        }
    }
    let stats = &state.stats.tables[ti];
    if fresh > 0 {
        stats.gamma_fresh.fetch_add(fresh, Ordering::Relaxed);
        stats.triggers.fetch_add(
            fresh * state.program.rules_by_trigger()[ti].len() as u64,
            Ordering::Relaxed,
        );
    }
    if dups > 0 {
        stats.gamma_dups.fetch_add(dups, Ordering::Relaxed);
    }
    for (t, outcome) in chunk.iter().zip(&outcomes) {
        if matches!(outcome, InsertOutcome::Fresh) {
            fire_rules(state, key, t);
        }
    }
}

/// The result of one engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Number of Delta extraction steps.
    pub steps: u64,
    /// Tuples processed out of the Delta set.
    pub tuples_processed: u64,
    /// Wall time of the run.
    pub elapsed: Duration,
    /// Coordinator time spent draining staged tuples into the Delta queue
    /// (the sum of `partition_time` and `merge_time`). Zero unless
    /// [`EngineConfig::record_steps`] is set — the per-step timers are
    /// profiling instrumentation, not free.
    pub drain_time: Duration,
    /// Drain phase 1: swapping the per-worker staging bins out into
    /// per-partition runs. Zero unless [`EngineConfig::record_steps`] is
    /// set.
    pub partition_time: Duration,
    /// Drain phase 2: merging the partition runs into the Delta queue
    /// (parallel subtree builds + the coordinator's graft, or the
    /// sequential fallback). Zero unless [`EngineConfig::record_steps`]
    /// is set.
    pub merge_time: Duration,
    /// Time spent executing equivalence classes (Gamma inserts + rules).
    /// Zero unless [`EngineConfig::record_steps`] is set.
    pub execute_time: Duration,
    /// Classes executed inline on the coordinator.
    pub inline_classes: u64,
    /// Classes fanned out to the fork/join pool.
    pub forked_classes: u64,
    /// Collected `println` output (order not significant).
    pub output: Vec<String>,
}

impl RunReport {
    /// Delta-set throughput: tuples processed per second of wall time.
    pub fn tuples_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.tuples_processed as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of accounted step time the coordinator spent draining
    /// (vs. executing). A high value means the drain, not the hardware,
    /// sets the speed limit.
    pub fn drain_fraction(&self) -> f64 {
        let total = self.drain_time.as_secs_f64() + self.execute_time.as_secs_f64();
        if total > 0.0 {
            self.drain_time.as_secs_f64() / total
        } else {
            0.0
        }
    }

    /// Mean drain and execute time per step.
    pub fn per_step(&self) -> (Duration, Duration) {
        let steps = self.steps.max(1) as u32;
        (self.drain_time / steps, self.execute_time / steps)
    }
}

/// A configured instance of a JStar program, ready to run.
pub struct Engine {
    state: Arc<RunState>,
    config: EngineConfig,
    pool: Option<Arc<ThreadPool>>,
    injected: Vec<Tuple>,
}

impl Engine {
    /// Builds an engine for `program` under `config`.
    ///
    /// Gamma stores default to the mode-appropriate structure (§5: `TreeSet`
    /// sequentially, concurrent ordered store in parallel) unless overridden
    /// per table via [`EngineConfig::store`].
    pub fn new(program: Arc<Program>, config: EngineConfig) -> Engine {
        let n = program.defs().len();
        let kinds: Vec<StoreKind> = (0..n)
            .map(|i| {
                config
                    .stores
                    .get(&TableId(i as u32))
                    .cloned()
                    .unwrap_or_else(|| StoreKind::default_for(!config.sequential))
            })
            .collect();
        let gamma = Gamma::new(program.defs(), &kinds);
        let pool = if config.sequential {
            None
        } else {
            Some(
                config
                    .pool
                    .clone()
                    .unwrap_or_else(|| Arc::new(ThreadPool::new(config.threads))),
            )
        };
        let mut no_delta = vec![false; n];
        for t in &config.no_delta {
            no_delta[t.index()] = true;
        }
        let mut no_gamma = vec![false; n];
        for t in &config.no_gamma {
            no_gamma[t.index()] = true;
        }
        let plans: Vec<QueryPlan> = (0..n)
            .map(|i| QueryPlan::new(&program.orderbys()[i], &**gamma.store(TableId(i as u32))))
            .collect();
        let workers = pool.as_ref().map(|p| p.num_threads()).unwrap_or(0);
        // Partition function for the staged-tuple bins, derived from the
        // program's orderby schema: hash enough leading key components to
        // reach the first tuple-dependent (`seq`) level of any
        // Delta-eligible table. Workloads whose tables share one stratum
        // (Dijkstra's Estimates) then still spread across partitions by
        // the seq value instead of collapsing into one bin.
        let prefix_len = (0..n)
            .filter(|i| !no_delta[*i])
            .map(|i| {
                let comps = &program.orderbys()[i].components;
                comps
                    .iter()
                    .position(|c| matches!(c, crate::orderby::ResolvedComponent::Seq { .. }))
                    .map(|p| p + 1)
                    .unwrap_or(comps.len())
            })
            .max()
            .unwrap_or(1)
            .clamp(1, 4);
        let partitions = if workers > 1 {
            (workers * 2).next_power_of_two()
        } else {
            1
        };
        let state = Arc::new(RunState {
            program: Arc::clone(&program),
            gamma,
            inbox: ShardedInbox::with_partitioning(workers, partitions, prefix_len),
            plans,
            no_delta,
            no_gamma,
            type_check: config.type_check,
            enforce_causality: config.enforce_causality,
            output: Mutex::new(Vec::new()),
            errors: Mutex::new(Vec::new()),
            stats: EngineStats::new(n),
            pool: pool.clone(),
        });
        Engine {
            state,
            config,
            pool,
            injected: Vec::new(),
        }
    }

    /// Queues an external event tuple (§3: "the input tuples are added to
    /// the Delta Set, and can then trigger various rules"). Must be called
    /// before [`Engine::run`].
    pub fn inject(&mut self, t: Tuple) {
        self.injected.push(t);
    }

    /// Typed [`Engine::inject`]: queues an external event relation.
    pub fn inject_rel<R: Relation>(&mut self, row: R) {
        let id = self.state.program.handle::<R>().id();
        self.injected.push(Tuple::new(id, row.into_values()));
    }

    /// Runs the program to quiescence (empty Delta set).
    pub fn run(&mut self) -> Result<RunReport> {
        let start = Instant::now();
        let state = &*self.state;

        // Initial puts (from program source) and injected events enter at
        // the minimal key, so they may target any table.
        let min = OrderKey::minimum();
        for t in state.program.initial() {
            put_tuple(state, &min, "<init>", t.clone());
        }
        for t in self.injected.drain(..) {
            put_tuple(state, &min, "<inject>", t);
        }

        let mut tree = DeltaQueue::new(self.config.delta);
        let mut steps: u64 = 0;
        // Reusable per-partition drain runs and per-table insert counters:
        // the batch drain publishes one stats update per touched table per
        // step, not one per tuple.
        let mut staged_runs: Vec<Vec<(OrderKey, Tuple)>> =
            (0..state.inbox.partitions()).map(|_| Vec::new()).collect();
        let mut inserted_by_table: Vec<u64> = vec![0; state.program.defs().len()];
        let inline_threshold = self.config.inline_class_threshold.max(1);
        let merge_threshold = self.config.parallel_merge_threshold;
        // The per-step drain/execute timers share the record_steps gate:
        // profiling runs get the split, production runs pay zero clock
        // reads in the coordinator loop.
        let timing = self.config.record_steps;
        loop {
            if state.has_errors() {
                break;
            }
            // Absorb everything staged by the previous step's workers.
            // Phase 1 (partition): one bulk swap across the shards, runs
            // already binned by key prefix. Phase 2 (merge): pool workers
            // build one subtree per partition and the coordinator grafts
            // them (sequential insert loop below the threshold). The
            // staged-length poll is a single relaxed atomic read.
            if !state.inbox.is_empty() {
                let partition_start = timing.then(Instant::now);
                state.inbox.drain_partitions(&mut staged_runs);
                let partition_elapsed = partition_start.map(|t0| t0.elapsed());

                let merge_start = timing.then(Instant::now);
                tree.merge_partitioned(
                    &mut staged_runs,
                    self.pool.as_deref(),
                    &mut inserted_by_table,
                    merge_threshold,
                );
                let merge_elapsed = merge_start.map(|t0| t0.elapsed());

                for (ti, count) in inserted_by_table.iter_mut().enumerate() {
                    if *count > 0 {
                        state.stats.tables[ti]
                            .delta_inserts
                            .fetch_add(*count, Ordering::Relaxed);
                        *count = 0;
                    }
                }
                if let (Some(p), Some(m)) = (partition_elapsed, merge_elapsed) {
                    state
                        .stats
                        .partition_nanos
                        .fetch_add(p.as_nanos() as u64, Ordering::Relaxed);
                    state
                        .stats
                        .merge_nanos
                        .fetch_add(m.as_nanos() as u64, Ordering::Relaxed);
                    state
                        .stats
                        .drain_nanos
                        .fetch_add((p + m).as_nanos() as u64, Ordering::Relaxed);
                }
            }

            let Some((key, mut class)) = tree.pop_min_class() else {
                break;
            };
            steps += 1;
            if let Some(max) = self.config.max_steps {
                if steps > max {
                    state.record_error(JStarError::Other(format!(
                        "step limit {max} exceeded — is a rule putting tuples unconditionally?"
                    )));
                    break;
                }
            }
            let class_size = class.len();
            state.stats.record_step(class_size);
            let exec_start = timing.then(Instant::now);

            match &self.pool {
                Some(pool) if class_size > inline_threshold => {
                    // Adaptive all-minimums: chunk by measured class width
                    // and current pool occupancy, submit all chunks as one
                    // batch (single wakeup).
                    state.stats.forked_classes.fetch_add(1, Ordering::Relaxed);
                    let chunk = jstar_pool::adaptive_chunk(pool, class_size);
                    let key = &key;
                    pool.scope(|s| {
                        s.spawn_batch(class.chunks(chunk).map(|piece| {
                            move |_: &jstar_pool::Scope<'_>| {
                                process_class_chunk(state, key, piece);
                            }
                        }));
                    });
                }
                Some(_) => {
                    // Tiny class: fork/join overhead exceeds the work, so
                    // execute inline on the coordinator.
                    state.stats.inline_classes.fetch_add(1, Ordering::Relaxed);
                    for t in class {
                        process_tuple(state, &key, t);
                    }
                }
                None => {
                    // Deterministic intra-class order for the sequential
                    // engine (parallel execution order is intentionally
                    // unspecified, so only this arm pays for the sort).
                    state.stats.inline_classes.fetch_add(1, Ordering::Relaxed);
                    class.sort();
                    for t in class {
                        process_tuple(state, &key, t);
                    }
                }
            }

            if let Some(t0) = exec_start {
                let exec_elapsed = t0.elapsed();
                state
                    .stats
                    .execute_nanos
                    .fetch_add(exec_elapsed.as_nanos() as u64, Ordering::Relaxed);
                state.stats.log_step(StepRecord {
                    key: key.to_string(),
                    class_size,
                    micros: exec_elapsed.as_micros(),
                });
            }

            // §5 step 4: apply manual tuple-lifetime hints periodically.
            if self.config.hint_interval > 0 && steps.is_multiple_of(self.config.hint_interval) {
                for (table, keep) in &self.config.lifetime_hints {
                    state.gamma.store(*table).retain(&**keep);
                }
            }
        }

        let errors = state.errors.lock();
        if let Some(first) = errors.first() {
            return Err(first.clone());
        }
        drop(errors);

        Ok(RunReport {
            steps,
            tuples_processed: state.stats.tuples_processed.load(Ordering::Relaxed),
            elapsed: start.elapsed(),
            drain_time: Duration::from_nanos(state.stats.drain_nanos.load(Ordering::Relaxed)),
            partition_time: Duration::from_nanos(
                state.stats.partition_nanos.load(Ordering::Relaxed),
            ),
            merge_time: Duration::from_nanos(state.stats.merge_nanos.load(Ordering::Relaxed)),
            execute_time: Duration::from_nanos(state.stats.execute_nanos.load(Ordering::Relaxed)),
            inline_classes: state.stats.inline_classes.load(Ordering::Relaxed),
            forked_classes: state.stats.forked_classes.load(Ordering::Relaxed),
            output: state.output.lock().clone(),
        })
    }

    /// The Gamma database (inspect results after a run).
    pub fn gamma(&self) -> &Gamma {
        &self.state.gamma
    }

    /// Engine statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.state.stats
    }

    /// The program being executed.
    pub fn program(&self) -> &Arc<Program> {
        &self.state.program
    }

    /// The typed handle for relation `R` (panics if unregistered).
    pub fn handle<R: Relation>(&self) -> TableHandle<R> {
        self.state.program.handle::<R>()
    }

    /// Collects and decodes every Gamma row matching a typed query —
    /// the typed read path for inspecting results after a run:
    /// `engine.collect_rel(Ship::query())`.
    pub fn collect_rel<R: Relation>(&self, q: TypedQuery<R>) -> Vec<R> {
        let q = q.lower(self.handle::<R>());
        let mut out = Vec::new();
        self.state.gamma.query(&q, &mut |t| {
            out.push(R::from_tuple(t));
            true
        });
        out
    }

    /// Streams decoded Gamma rows matching a typed query; return
    /// `false` from the callback to stop early.
    pub fn for_each_rel_gamma<R: Relation>(&self, q: TypedQuery<R>, mut f: impl FnMut(R) -> bool) {
        let q = q.lower(self.handle::<R>());
        self.state.gamma.query(&q, &mut |t| f(R::from_tuple(t)));
    }

    /// Collected output lines so far.
    pub fn output(&self) -> Vec<String> {
        self.state.output.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orderby::{seq, strat};
    use crate::program::ProgramBuilder;
    use crate::value::Value;

    /// The paper's bounded Ship program (§3): move right while x < 400.
    fn ship_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new();
        let ship = p.table("Ship", |b| {
            b.col_int("frame")
                .col_int("x")
                .col_int("y")
                .col_int("dx")
                .col_int("dy")
                .orderby(&[strat("Int"), seq("frame")])
        });
        p.rule("move-right", ship, move |ctx, s| {
            if s.int(1) < 400 {
                ctx.put(Tuple::new(
                    ship,
                    vec![
                        Value::Int(s.int(0) + 1),
                        Value::Int(s.int(1) + 150),
                        Value::Int(s.int(2)),
                        Value::Int(s.int(3)),
                        Value::Int(s.int(4)),
                    ],
                ));
            }
        });
        p.put(Tuple::new(
            ship,
            vec![
                Value::Int(0),
                Value::Int(10),
                Value::Int(10),
                Value::Int(150),
                Value::Int(0),
            ],
        ));
        Arc::new(p.build().unwrap())
    }

    #[test]
    fn ship_moves_until_bound_sequential() {
        let prog = ship_program();
        let mut eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
        let report = eng.run().unwrap();
        // Frames 0..=3: x = 10, 160, 310, 460 (460 >= 400 stops the rule).
        let ship = prog.table_id("Ship").unwrap();
        let all = eng.gamma().collect(&Query::on(ship));
        assert_eq!(all.len(), 4);
        let mut xs: Vec<i64> = all.iter().map(|t| t.int(1)).collect();
        xs.sort();
        assert_eq!(xs, vec![10, 160, 310, 460]);
        assert_eq!(report.steps, 4);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let prog = ship_program();
        let ship = prog.table_id("Ship").unwrap();
        let mut seq_eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
        seq_eng.run().unwrap();
        let mut par_eng = Engine::new(Arc::clone(&prog), EngineConfig::parallel(4));
        par_eng.run().unwrap();
        let mut a = seq_eng.gamma().collect(&Query::on(ship));
        let mut b = par_eng.gamma().collect(&Query::on(ship));
        a.sort();
        b.sort();
        assert_eq!(a, b, "deterministic output independent of strategy");
    }

    #[test]
    fn unbounded_rule_hits_step_limit() {
        // §3's first rule: "effectively creates an infinite loop that keeps
        // moving the Ship infinitely far to the right!"
        let mut p = ProgramBuilder::new();
        let ship = p.table("Ship", |b| {
            b.col_int("frame").col_int("x").orderby(&[seq("frame")])
        });
        p.rule("move-unbounded", ship, move |ctx, s| {
            ctx.put(Tuple::new(
                ship,
                vec![Value::Int(s.int(0) + 1), Value::Int(s.int(1) + 150)],
            ));
        });
        p.put(Tuple::new(ship, vec![Value::Int(0), Value::Int(10)]));
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(prog, EngineConfig::sequential().max_steps(100));
        let err = eng.run().unwrap_err();
        assert!(err.to_string().contains("step limit"));
    }

    #[test]
    fn causality_violation_is_caught_at_runtime() {
        let mut p = ProgramBuilder::new();
        let t = p.table("T", |b| b.col_int("time").orderby(&[seq("time")]));
        p.rule("back-in-time", t, move |ctx, tr| {
            ctx.put(Tuple::new(t, vec![Value::Int(tr.int(0) - 1)]));
        });
        p.put(Tuple::new(t, vec![Value::Int(5)]));
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(prog, EngineConfig::sequential());
        let err = eng.run().unwrap_err();
        assert!(
            matches!(err, JStarError::CausalityViolation { .. }),
            "{err}"
        );
    }

    #[test]
    fn key_violation_detected() {
        let mut p = ProgramBuilder::new();
        let t = p.table("T", |b| {
            b.col_int("k").col_int("v").key(1).orderby(&[seq("k")])
        });
        p.put(Tuple::new(t, vec![Value::Int(1), Value::Int(10)]));
        p.put(Tuple::new(t, vec![Value::Int(1), Value::Int(20)]));
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(prog, EngineConfig::sequential());
        let err = eng.run().unwrap_err();
        assert!(matches!(err, JStarError::KeyViolation { .. }), "{err}");
    }

    #[test]
    fn type_error_detected() {
        let mut p = ProgramBuilder::new();
        let t = p.table("T", |b| b.col_int("k").orderby(&[seq("k")]));
        p.put(Tuple::new(t, vec![Value::str("not an int")]));
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(prog, EngineConfig::sequential());
        let err = eng.run().unwrap_err();
        assert!(matches!(err, JStarError::Type(_)), "{err}");
    }

    #[test]
    fn duplicates_trigger_rules_once() {
        let mut p = ProgramBuilder::new();
        let a = p.table("A", |b| b.col_int("t").orderby(&[strat("A"), seq("t")]));
        let b = p.table("B", |bb| bb.col_int("t").orderby(&[strat("B"), seq("t")]));
        p.order(&["A", "B"]);
        p.rule("fan-in", a, move |ctx, tr| {
            // Many A tuples map to the same B tuple (like PvWatts →
            // SumMonth); B's rule must fire once per distinct tuple.
            ctx.put(Tuple::new(b, vec![Value::Int(tr.int(0) / 10)]));
        });
        p.rule("count-b", b, move |ctx, tr| {
            ctx.println(format!("B {}", tr.int(0)));
        });
        for i in 0..30 {
            p.put(Tuple::new(a, vec![Value::Int(i)]));
        }
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(prog, EngineConfig::sequential());
        let report = eng.run().unwrap();
        let mut out = report.output;
        out.sort();
        assert_eq!(out, vec!["B 0", "B 1", "B 2"]);
    }

    #[test]
    fn no_delta_fires_rules_inline() {
        let mut p = ProgramBuilder::new();
        let a = p.table("A", |b| b.col_int("t").orderby(&[strat("A"), seq("t")]));
        let b = p.table("B", |bb| bb.col_int("t").orderby(&[strat("B"), seq("t")]));
        p.order(&["A", "B"]);
        p.rule("emit", a, move |ctx, tr| {
            ctx.put(Tuple::new(b, vec![Value::Int(tr.int(0))]));
        });
        p.rule("sink", b, move |ctx, tr| {
            ctx.println(format!("got {}", tr.int(0)));
        });
        p.put(Tuple::new(a, vec![Value::Int(1)]));
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(
            Arc::clone(&prog),
            EngineConfig::sequential().no_delta(prog.table_id("B").unwrap()),
        );
        let report = eng.run().unwrap();
        assert_eq!(report.output, vec!["got 1"]);
        // B bypassed the Delta tree entirely.
        let snap = eng.stats().tables[prog.table_id("B").unwrap().index()].snapshot();
        assert_eq!(snap.delta_inserts, 0);
        assert_eq!(snap.gamma_fresh, 1);
    }

    #[test]
    fn no_gamma_tables_are_not_stored() {
        let mut p = ProgramBuilder::new();
        let a = p.table("A", |b| b.col_int("t").orderby(&[seq("t")]));
        p.rule("noop", a, move |_ctx, _t| {});
        p.put(Tuple::new(a, vec![Value::Int(1)]));
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(
            Arc::clone(&prog),
            EngineConfig::sequential().no_gamma(prog.table_id("A").unwrap()),
        );
        eng.run().unwrap();
        assert_eq!(eng.gamma().total_len(), 0);
        // The rule still fired.
        let snap = eng.stats().tables[0].snapshot();
        assert_eq!(snap.triggers, 1);
    }

    #[test]
    fn injected_events_trigger_rules() {
        let mut p = ProgramBuilder::new();
        let ev = p.table("Event", |b| b.col_int("t").orderby(&[seq("t")]));
        p.rule("log", ev, move |ctx, t| {
            ctx.println(format!("ev {}", t.int(0)))
        });
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
        eng.inject(Tuple::new(ev, vec![Value::Int(9)]));
        let report = eng.run().unwrap();
        assert_eq!(report.output, vec!["ev 9"]);
    }

    #[test]
    fn flat_delta_kind_produces_identical_results() {
        let prog = ship_program();
        let ship = prog.table_id("Ship").unwrap();
        let mut tree_eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
        tree_eng.run().unwrap();
        let mut flat_eng = Engine::new(
            Arc::clone(&prog),
            EngineConfig::sequential().delta_kind(crate::delta::DeltaKind::Flat),
        );
        flat_eng.run().unwrap();
        let mut a = tree_eng.gamma().collect(&Query::on(ship));
        let mut b = flat_eng.gamma().collect(&Query::on(ship));
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn lifetime_hints_discard_old_tuples() {
        let prog = ship_program();
        let ship = prog.table_id("Ship").unwrap();
        // Keep only ships at frame >= 2 — the two-generation idea of §6.6.
        let config = EngineConfig::sequential().lifetime_hint(ship, 1, |t| t.int(0) >= 2);
        let mut eng = Engine::new(Arc::clone(&prog), config);
        eng.run().unwrap();
        let left = eng.gamma().collect(&Query::on(ship));
        assert!(left.len() < 4, "hints discarded early frames: {left:?}");
        assert!(left.iter().all(|t| t.int(0) >= 2));
    }

    #[test]
    fn stats_count_puts_and_triggers() {
        let prog = ship_program();
        let mut eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
        eng.run().unwrap();
        let snap = eng.stats().tables[0].snapshot();
        assert_eq!(snap.puts, 4, "initial + 3 rule puts");
        assert_eq!(snap.gamma_fresh, 4);
        assert_eq!(snap.triggers, 4);
    }
}
