//! Table schemas — the JStar `table` declaration.
//!
//! A JStar table declaration such as
//!
//! ```text
//! table Ship(int frame -> int x, int y, int dx, int dy) orderby (Int, seq frame)
//! ```
//!
//! declares column names and types, a primary-key split (`->`: the columns
//! before the arrow functionally determine the ones after), and an `orderby`
//! list that positions the table's tuples in the global causality ordering.

use crate::error::JStarError;
use crate::orderby::OrderComponent;
use crate::value::{Value, ValueType};
use std::fmt;

/// Identifies a table within one [`crate::program::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl TableId {
    /// The index of this table in program-wide vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// One column of a table.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ValueType,
    /// Value used when the tuple builder leaves the field unset.
    pub default: Value,
}

/// A complete table definition.
#[derive(Debug, Clone)]
pub struct TableDef {
    pub id: TableId,
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Number of leading columns forming the primary key (`->` notation).
    /// `None` means the whole tuple is the key (pure set semantics).
    pub key_arity: Option<usize>,
    /// The `orderby` list controlling this table's position in the Delta
    /// tree and in the causality ordering.
    pub orderby: Vec<OrderComponent>,
}

impl TableDef {
    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Looks up a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column index by name, panicking with a diagnostic if absent.
    pub fn col(&self, name: &str) -> usize {
        self.column_index(name)
            .unwrap_or_else(|| panic!("table {} has no column named {name}", self.name))
    }

    /// The default field values for a fresh tuple builder.
    pub fn default_fields(&self) -> Vec<Value> {
        self.columns.iter().map(|c| c.default.clone()).collect()
    }

    /// True if `fields` matches this schema's arity and column types.
    pub fn type_check(&self, fields: &[Value]) -> Result<(), String> {
        if fields.len() != self.columns.len() {
            return Err(format!(
                "table {}: expected {} fields, got {}",
                self.name,
                self.columns.len(),
                fields.len()
            ));
        }
        for (i, (f, c)) in fields.iter().zip(&self.columns).enumerate() {
            if f.value_type() != c.ty {
                return Err(format!(
                    "table {}: field {i} ({}) expected {} but got {}",
                    self.name,
                    c.name,
                    c.ty,
                    f.value_type()
                ));
            }
        }
        Ok(())
    }

    /// The strat literals appearing in this table's orderby list, in order.
    pub fn strat_literals(&self) -> impl Iterator<Item = &str> {
        self.orderby.iter().filter_map(|c| match c {
            OrderComponent::Strat(name) => Some(name.as_str()),
            _ => None,
        })
    }
}

/// Fluent builder for [`TableDef`], used by
/// [`crate::program::ProgramBuilder::table`].
pub struct TableDefBuilder {
    pub(crate) name: String,
    pub(crate) columns: Vec<ColumnDef>,
    pub(crate) key_arity: Option<usize>,
    pub(crate) orderby: Vec<OrderComponent>,
    /// First misuse (duplicate column) noticed while building. Deferred
    /// rather than panicked on: [`crate::program::ProgramBuilder::build`]
    /// reports it as a [`JStarError`], keeping the fluent API infallible
    /// at each step while making misuse reportable, not a crash.
    pub(crate) error: Option<JStarError>,
}

impl TableDefBuilder {
    /// Starts a standalone table definition (outside a
    /// [`crate::program::ProgramBuilder`]) — useful for constructing custom
    /// stores and for tests. Finish with [`TableDefBuilder::build_def`] or
    /// [`TableDefBuilder::try_build_def`].
    pub fn standalone(name: &str) -> Self {
        TableDefBuilder::new(name)
    }

    /// Finishes a standalone definition with an explicit id, returning
    /// any misuse recorded along the way (duplicate column names).
    pub fn try_build_def(self, id: TableId) -> crate::error::Result<TableDef> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(TableDef {
            id,
            name: self.name,
            columns: self.columns,
            key_arity: self.key_arity,
            orderby: self.orderby,
        })
    }

    /// Finishes a standalone definition with an explicit id. Panics on
    /// recorded misuse — use [`TableDefBuilder::try_build_def`] where a
    /// reportable error is wanted.
    pub fn build_def(self, id: TableId) -> TableDef {
        self.try_build_def(id).expect("table definition is valid")
    }

    pub(crate) fn new(name: &str) -> Self {
        TableDefBuilder {
            name: name.to_string(),
            columns: Vec::new(),
            key_arity: None,
            orderby: Vec::new(),
            error: None,
        }
    }

    fn push_col(mut self, name: &str, ty: ValueType) -> Self {
        if self.columns.iter().any(|c| c.name == name) {
            if self.error.is_none() {
                self.error = Some(JStarError::DuplicateColumn {
                    table: self.name.clone(),
                    column: name.to_string(),
                });
            }
            return self;
        }
        self.columns.push(ColumnDef {
            name: name.to_string(),
            ty,
            default: ty.default_value(),
        });
        self
    }

    /// Adds a column of an arbitrary [`ValueType`] — used by
    /// [`crate::program::ProgramBuilder::relation`] to instantiate a
    /// [`crate::relation::Relation`] schema.
    pub fn col(self, name: &str, ty: ValueType) -> Self {
        self.push_col(name, ty)
    }

    /// Adds an `int` column.
    pub fn col_int(self, name: &str) -> Self {
        self.push_col(name, ValueType::Int)
    }

    /// Adds a `double` column.
    pub fn col_double(self, name: &str) -> Self {
        self.push_col(name, ValueType::Double)
    }

    /// Adds a `String` column.
    pub fn col_str(self, name: &str) -> Self {
        self.push_col(name, ValueType::Str)
    }

    /// Adds a `boolean` column.
    pub fn col_bool(self, name: &str) -> Self {
        self.push_col(name, ValueType::Bool)
    }

    /// Overrides the default value of the most recently added column.
    pub fn default_value(mut self, v: impl Into<Value>) -> Self {
        let col = self
            .columns
            .last_mut()
            .expect("default_value must follow a column");
        let v = v.into();
        assert_eq!(
            v.value_type(),
            col.ty,
            "default for column {} has wrong type",
            col.name
        );
        col.default = v;
        self
    }

    /// Declares the `->` primary-key split: the first `arity` columns
    /// functionally determine the rest (at most one tuple per key).
    pub fn key(mut self, arity: usize) -> Self {
        assert!(arity > 0 && arity <= self.columns.len());
        self.key_arity = Some(arity);
        self
    }

    /// Sets the `orderby` list. Use [`crate::orderby::strat`],
    /// [`crate::orderby::seq`] and [`crate::orderby::par`] to build
    /// components; `seq`/`par` name columns of this table.
    pub fn orderby(mut self, components: &[OrderComponent]) -> Self {
        self.orderby = components.to_vec();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orderby::{seq, strat};

    fn ship_def() -> TableDef {
        let b = TableDefBuilder::new("Ship")
            .col_int("frame")
            .col_int("x")
            .col_int("y")
            .col_int("dx")
            .col_int("dy")
            .key(1)
            .orderby(&[strat("Int"), seq("frame")]);
        TableDef {
            id: TableId(0),
            name: b.name,
            columns: b.columns,
            key_arity: b.key_arity,
            orderby: b.orderby,
        }
    }

    #[test]
    fn builder_collects_columns() {
        let def = ship_def();
        assert_eq!(def.arity(), 5);
        assert_eq!(def.column_index("dx"), Some(3));
        assert_eq!(def.col("frame"), 0);
        assert_eq!(def.key_arity, Some(1));
    }

    #[test]
    #[should_panic(expected = "no column named")]
    fn missing_column_panics() {
        ship_def().col("nope");
    }

    #[test]
    fn type_check_accepts_good_fields() {
        let def = ship_def();
        let fields = vec![
            Value::Int(0),
            Value::Int(10),
            Value::Int(10),
            Value::Int(150),
            Value::Int(0),
        ];
        assert!(def.type_check(&fields).is_ok());
    }

    #[test]
    fn type_check_rejects_bad_arity_and_types() {
        let def = ship_def();
        assert!(def.type_check(&[Value::Int(0)]).is_err());
        let fields = vec![
            Value::Int(0),
            Value::str("oops"),
            Value::Int(10),
            Value::Int(150),
            Value::Int(0),
        ];
        let err = def.type_check(&fields).unwrap_err();
        assert!(err.contains("field 1"), "{err}");
    }

    #[test]
    fn default_fields_respect_overrides() {
        let b = TableDefBuilder::new("T")
            .col_int("a")
            .default_value(42i64)
            .col_str("s");
        assert_eq!(b.columns[0].default, Value::Int(42));
        assert_eq!(b.columns[1].default, Value::str(""));
    }

    #[test]
    fn duplicate_column_is_a_reported_error() {
        let err = TableDefBuilder::new("T")
            .col_int("a")
            .col_int("a")
            .try_build_def(TableId(0))
            .unwrap_err();
        assert_eq!(
            err,
            JStarError::DuplicateColumn {
                table: "T".into(),
                column: "a".into(),
            }
        );
        assert!(err.to_string().contains("Duplicate column a in table T"));
    }

    #[test]
    fn generic_col_matches_typed_shorthands() {
        let def = TableDefBuilder::standalone("G")
            .col("i", ValueType::Int)
            .col("s", ValueType::Str)
            .build_def(TableId(0));
        assert_eq!(def.columns[0].ty, ValueType::Int);
        assert_eq!(def.columns[1].ty, ValueType::Str);
    }
}
