//! # jstar-core — the JStar declarative parallel runtime
//!
//! A Rust reproduction of the system described in *The JStar Language
//! Philosophy* (Utting, Weng & Cleary, 2013). JStar's semantics is Datalog
//! with negation plus an explicit **causality ordering**: all data lives in
//! immutable in-memory relations, rules add (never mutate or delete) tuples,
//! and every tuple carries timestamp fields that place it in one global
//! lexicographic order. Rules "can affect the future, but they are not
//! allowed to change the past" — the Law of Causality (§4) — which is what
//! makes negative and aggregate queries sound and parallel execution
//! deterministic.
//!
//! ## Architecture (paper § in parentheses)
//!
//! * [`schema`], the `tuple` module and [`value`] — tables of immutable tuples (§3);
//! * [`orderby`] / [`strata`] — orderby lists, `order` declarations and
//!   [`orderby::OrderKey`]s (§4);
//! * [`delta`] — the Delta tree, a multi-level causal priority queue whose
//!   minimal equivalence class is the unit of parallelism (§5);
//! * [`gamma`] — the Gamma database with pluggable per-table stores —
//!   "late commitment to data structures" (§1.4, §5);
//! * [`rule`] / [`query`] / [`reduce`] — rules, positive/negative/aggregate
//!   queries, and reducers with user-defined operators (§1.3, §3);
//! * [`causality`] — static proof obligations discharged by a built-in
//!   Fourier–Motzkin linear-arithmetic engine (the paper's SMT solvers, §4);
//! * [`engine`] — the pseudo-naive bottom-up evaluator with sequential and
//!   all-minimums parallel strategies, plus the `-noDelta`/`-noGamma`
//!   optimisation flags (§5);
//! * [`program`] — the four-stage workflow: application logic, execution
//!   orderings, parallelism strategy, data structures (§2);
//! * [`stats`] — per-table usage statistics and DOT dependency graphs
//!   (§1.5).
//!
//! ## Quickstart
//!
//! The paper's Ship example (§3): a ship moves right 150 px/frame while
//! `x < 400`.
//!
//! ```
//! use jstar_core::prelude::*;
//!
//! let mut p = ProgramBuilder::new();
//! let ship = p.table("Ship", |b| {
//!     b.col_int("frame").col_int("x")
//!      .orderby(&[strat("Int"), seq("frame")])
//! });
//! p.rule("move-right", ship, move |ctx, s| {
//!     if s.int(1) < 400 {
//!         ctx.put(Tuple::new(ship, vec![
//!             Value::Int(s.int(0) + 1),
//!             Value::Int(s.int(1) + 150),
//!         ]));
//!     }
//! });
//! p.put(Tuple::new(ship, vec![Value::Int(0), Value::Int(10)]));
//!
//! let program = std::sync::Arc::new(p.build().unwrap());
//! let mut engine = Engine::new(program.clone(), EngineConfig::sequential());
//! engine.run().unwrap();
//! assert_eq!(engine.gamma().collect(&Query::on(ship)).len(), 4);
//! ```

pub mod causality;
pub mod delta;
pub mod dsl;
pub mod engine;
pub mod error;
pub mod gamma;
pub mod orderby;
pub mod program;
pub mod query;
pub mod reduce;
pub mod rule;
pub mod schema;
pub mod stats;
pub mod strata;
pub mod tuple;
pub mod value;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::causality::{CausalityModel, ModelCtx, PutModel, QueryModel};
    pub use crate::engine::{Engine, EngineConfig, RuleCtx, RunReport};
    pub use crate::error::{JStarError, Result};
    pub use crate::gamma::{Gamma, InsertOutcome, StoreKind, TableStore};
    pub use crate::orderby::{par, seq, strat, OrderKey};
    pub use crate::program::{Program, ProgramBuilder};
    pub use crate::query::Query;
    pub use crate::reduce::{
        reduce_par, reduce_seq, CountReducer, MaxIntReducer, MinIntReducer, Reducer, Statistics,
        Stats, SumReducer,
    };
    pub use crate::schema::{TableDef, TableId};
    pub use crate::tuple::Tuple;
    pub use crate::value::{Value, ValueType};
}
