//! # jstar-core — the JStar declarative parallel runtime
//!
//! A Rust reproduction of the system described in *The JStar Language
//! Philosophy* (Utting, Weng & Cleary, 2013). JStar's semantics is Datalog
//! with negation plus an explicit **causality ordering**: all data lives in
//! immutable in-memory relations, rules add (never mutate or delete) tuples,
//! and every tuple carries timestamp fields that place it in one global
//! lexicographic order. Rules "can affect the future, but they are not
//! allowed to change the past" — the Law of Causality (§4) — which is what
//! makes negative and aggregate queries sound and parallel execution
//! deterministic.
//!
//! ## Architecture (paper § in parentheses)
//!
//! * [`schema`], the `tuple` module and [`value`] — tables of immutable tuples (§3);
//! * [`orderby`] / [`strata`] — orderby lists, `order` declarations and
//!   [`orderby::OrderKey`]s (§4);
//! * [`delta`] — the Delta tree, a multi-level causal priority queue whose
//!   minimal equivalence class is the unit of parallelism (§5);
//! * [`gamma`] — the Gamma database with pluggable per-table stores —
//!   "late commitment to data structures" (§1.4, §5);
//! * [`rule`] / [`query`] / [`reduce`] — rules, positive/negative/aggregate
//!   queries, and reducers with user-defined operators (§1.3, §3);
//! * [`relation`](mod@relation) / [`dsl`] — the typed façade: schema-carrying relation
//!   structs, `Field` tokens, typed queries, and the `jstar_table!`
//!   declaration macro (§1.1's concision goal);
//! * [`causality`] — static proof obligations discharged by a built-in
//!   Fourier–Motzkin linear-arithmetic engine (the paper's SMT solvers, §4);
//! * [`engine`] — the pseudo-naive bottom-up evaluator with sequential and
//!   all-minimums parallel strategies, plus the `-noDelta`/`-noGamma`
//!   optimisation flags (§5);
//! * [`program`] — the four-stage workflow: application logic, execution
//!   orderings, parallelism strategy, data structures (§2);
//! * [`stats`] — per-table usage statistics and DOT dependency graphs
//!   (§1.5).
//!
//! The public surface is the **typed relation façade** ([`relation`](mod@relation),
//! [`dsl`]): the paper's one-line table declaration generates a Rust
//! struct, a schema, and per-column [`relation::Field`] tokens, so rules
//! and queries are compile-time checked. The positional API
//! ([`query::Query::on`], [`tuple::Tuple::new`]) remains the documented
//! low-level escape hatch for custom stores and generic tooling.
//!
//! ## Quickstart
//!
//! The paper's Ship example (§3): a ship moves right 150 px/frame while
//! `x < 400`.
//!
//! ```
//! use jstar_core::prelude::*;
//!
//! jstar_core::jstar_table! {
//!     /// table Ship(int frame -> int x) orderby (Int, seq frame)
//!     #[derive(Copy, Eq)]
//!     pub Ship(int frame -> int x) orderby (Int, seq frame)
//! }
//!
//! let mut p = ProgramBuilder::new();
//! p.rule_rel("move-right", |ctx, s: Ship| {
//!     if s.x < 400 {
//!         ctx.put_rel(Ship { frame: s.frame + 1, x: s.x + 150 });
//!     }
//! });
//! p.put_rel(Ship { frame: 0, x: 10 });
//!
//! let program = std::sync::Arc::new(p.build().unwrap());
//! let mut engine = Engine::new(program.clone(), EngineConfig::sequential());
//! engine.run().unwrap();
//! assert_eq!(engine.collect_rel(Ship::query()).len(), 4);
//! assert_eq!(engine.collect_rel(Ship::query().ge(Ship::x, 400)).len(), 1);
//! ```

pub mod causality;
pub mod delta;
pub mod dsl;
pub mod engine;
pub mod error;
pub(crate) mod fxhash;
pub mod gamma;
pub mod orderby;
pub mod persist;
pub mod program;
pub mod query;
pub mod reduce;
pub mod relation;
pub mod rule;
pub mod schema;
pub mod stats;
pub mod strata;
pub mod tuple;
pub mod value;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::causality::{CausalityModel, ModelCtx, PutModel, QueryModel};
    pub use crate::engine::{Engine, EngineConfig, JoinStrategy, RuleCtx, RunReport};
    pub use crate::error::{JStarError, Result};
    pub use crate::gamma::{
        Gamma, IndexCachePolicy, IndexCacheStats, InsertOutcome, StoreKind, TableStore,
    };
    pub use crate::orderby::{par, seq, strat, OrderKey};
    pub use crate::program::{Program, ProgramBuilder};
    pub use crate::query::Query;
    pub use crate::reduce::{
        reduce_par, reduce_seq, CountReducer, MaxIntReducer, MinIntReducer, Reducer, Statistics,
        Stats, SumReducer,
    };
    pub use crate::relation::{
        join, join3, Binder, ColumnSpec, ConstraintKind, ConstraintShape, Field, FieldValue, Join,
        Join3, JoinOn, JoinOn2, PreparedQuery, Relation, TableHandle, TypedQuery,
    };
    pub use crate::rule::{JoinPlan, JoinStage};
    pub use crate::schema::{TableDef, TableId};
    pub use crate::tuple::Tuple;
    pub use crate::value::{Value, ValueType};
}
