//! Rules — the computation of a JStar program (§3).
//!
//! "Each rule inspects the existing database, makes calculations and
//! decisions, and can then add tuples to one or more tables." A rule is
//! triggered by tuples of one table (the `foreach (Ship s)` header); its
//! body receives the trigger tuple and a [`crate::engine::RuleCtx`] through
//! which it queries Gamma and `put`s new tuples.

use crate::causality::CausalityModel;
use crate::engine::RuleCtx;
use crate::schema::TableId;
use crate::tuple::Tuple;
use std::sync::Arc;

/// The executable body of a rule. Bodies must be deterministic functions of
/// the trigger tuple and the database for JStar's deterministic-parallelism
/// guarantee (§1.3) to hold; they are called concurrently by the parallel
/// engine, hence `Send + Sync`.
pub type RuleBody = Arc<dyn Fn(&RuleCtx<'_>, &Tuple) + Send + Sync>;

/// Residual predicate of a [`JoinPlan`]: keeps a `(trigger, probed)` pair.
pub type JoinFilter = Arc<dyn Fn(&Tuple, &Tuple) -> bool + Send + Sync>;

/// Emission step of a [`JoinPlan`]: called once per surviving
/// `(trigger, probed)` pair; `put`s result tuples through the context.
pub type JoinEmit = Arc<dyn Fn(&RuleCtx<'_>, &Tuple, &Tuple) + Send + Sync>;

/// An inspectable (join → filter → emit) plan for a rule body.
///
/// Rules registered through
/// [`crate::program::ProgramBuilder::rule_rel_join`] expose their
/// constraint structure instead of hiding it inside an opaque closure:
/// for each trigger tuple, probe `probe_table` where every `keys` pair
/// `(trigger_field, probe_field)` is equal, keep pairs passing `filter`,
/// and run `emit` on each. The engine uses the shape to switch a whole
/// extracted class to **delta-join execution** (one batched hash-join
/// pass per class instead of one indexed probe per tuple) when the class
/// clears [`crate::engine::EngineConfig::delta_join_threshold`]; the
/// synthesized per-tuple body remains the below-threshold fallback, and
/// both produce the same emissions.
pub struct JoinPlan {
    /// The Gamma table probed per trigger tuple.
    pub probe_table: TableId,
    /// Equi-join pairs: trigger field `.0` equates to probed field `.1`.
    pub keys: Vec<(usize, usize)>,
    /// Residual predicate over `(trigger, probed)` pairs.
    pub filter: JoinFilter,
    /// Emission per surviving pair.
    pub emit: JoinEmit,
}

impl std::fmt::Debug for JoinPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinPlan")
            .field("probe_table", &self.probe_table)
            .field("keys", &self.keys)
            .finish()
    }
}

/// A JStar rule.
pub struct Rule {
    /// Diagnostic name.
    pub name: String,
    /// The table whose tuples trigger this rule.
    pub trigger: TableId,
    /// The rule body.
    pub body: RuleBody,
    /// Optional causality model for static checking (§4). Rules without a
    /// model are reported as unproved by strict validation, mirroring the
    /// compiler warning the paper describes.
    pub model: Option<CausalityModel>,
    /// Inspectable (join → filter → emit) shape, when the rule was
    /// registered through a join-aware path. `None` marks an opaque
    /// closure body, which the engine always executes per tuple.
    pub plan: Option<Arc<JoinPlan>>,
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule")
            .field("name", &self.name)
            .field("trigger", &self.trigger)
            .field("has_model", &self.model.is_some())
            .field("plan", &self.plan)
            .finish()
    }
}
