//! Rules — the computation of a JStar program (§3).
//!
//! "Each rule inspects the existing database, makes calculations and
//! decisions, and can then add tuples to one or more tables." A rule is
//! triggered by tuples of one table (the `foreach (Ship s)` header); its
//! body receives the trigger tuple and a [`crate::engine::RuleCtx`] through
//! which it queries Gamma and `put`s new tuples.

use crate::causality::CausalityModel;
use crate::engine::RuleCtx;
use crate::schema::TableId;
use crate::tuple::Tuple;
use std::sync::Arc;

/// The executable body of a rule. Bodies must be deterministic functions of
/// the trigger tuple and the database for JStar's deterministic-parallelism
/// guarantee (§1.3) to hold; they are called concurrently by the parallel
/// engine, hence `Send + Sync`.
pub type RuleBody = Arc<dyn Fn(&RuleCtx<'_>, &Tuple) + Send + Sync>;

/// A JStar rule.
pub struct Rule {
    /// Diagnostic name.
    pub name: String,
    /// The table whose tuples trigger this rule.
    pub trigger: TableId,
    /// The rule body.
    pub body: RuleBody,
    /// Optional causality model for static checking (§4). Rules without a
    /// model are reported as unproved by strict validation, mirroring the
    /// compiler warning the paper describes.
    pub model: Option<CausalityModel>,
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule")
            .field("name", &self.name)
            .field("trigger", &self.trigger)
            .field("has_model", &self.model.is_some())
            .finish()
    }
}
