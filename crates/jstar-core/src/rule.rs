//! Rules — the computation of a JStar program (§3).
//!
//! "Each rule inspects the existing database, makes calculations and
//! decisions, and can then add tuples to one or more tables." A rule is
//! triggered by tuples of one table (the `foreach (Ship s)` header); its
//! body receives the trigger tuple and a [`crate::engine::RuleCtx`] through
//! which it queries Gamma and `put`s new tuples.

use crate::causality::CausalityModel;
use crate::engine::RuleCtx;
use crate::schema::TableId;
use crate::tuple::Tuple;
use std::sync::Arc;

/// The executable body of a rule. Bodies must be deterministic functions of
/// the trigger tuple and the database for JStar's deterministic-parallelism
/// guarantee (§1.3) to hold; they are called concurrently by the parallel
/// engine, hence `Send + Sync`.
pub type RuleBody = Arc<dyn Fn(&RuleCtx<'_>, &Tuple) + Send + Sync>;

/// Residual predicate of a [`JoinPlan`]: keeps a row combination. The
/// slice is `[trigger, stage1_probed, stage2_probed, ...]` in stage
/// order — one tuple per relation of the join.
pub type JoinFilter = Arc<dyn Fn(&[&Tuple]) -> bool + Send + Sync>;

/// Emission step of a [`JoinPlan`]: called once per surviving row
/// combination (same slice layout as [`JoinFilter`]); `put`s result
/// tuples through the context.
pub type JoinEmit = Arc<dyn Fn(&RuleCtx<'_>, &[&Tuple]) + Send + Sync>;

/// One probe stage of a [`JoinPlan`]: a table to probe and the
/// equi-join keys binding it to rows already matched.
#[derive(Debug, Clone)]
pub struct JoinStage {
    /// The Gamma table this stage probes.
    pub probe_table: TableId,
    /// Equi-join pairs `((row, field), probe_field)`: field `field` of
    /// row `row` — row 0 is the trigger tuple, row `k ≥ 1` is stage
    /// `k`'s probed tuple — equates to `probe_field` of this stage's
    /// candidate. Stage 1 may only reference row 0; stage `k` may
    /// reference rows `0..k`.
    pub keys: Vec<((usize, usize), usize)>,
}

impl JoinStage {
    /// The key pairs whose source is the trigger row, as plain
    /// `(trigger_field, probe_field)` — the PR 8 single-stage shape.
    pub fn trigger_keys(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.keys
            .iter()
            .filter(|((row, _), _)| *row == 0)
            .map(|&((_, tf), pf)| (tf, pf))
    }
}

/// An inspectable (join → filter → emit) plan for a rule body.
///
/// Rules registered through
/// [`crate::program::ProgramBuilder::rule_rel_join`] (one probe stage)
/// or [`crate::program::ProgramBuilder::rule_rel_join2`] (two stages)
/// expose their constraint structure instead of hiding it inside an
/// opaque closure: for each trigger tuple, probe the stages in order —
/// each stage's candidates constrained by equi-join keys against rows
/// already matched — keep full row combinations passing `filter`, and
/// run `emit` on each. The variable order is fixed by stage declaration
/// order (no cost-based optimizer).
///
/// The engine uses the shape to switch a whole extracted class to
/// **delta-join execution** when the class clears
/// [`crate::engine::EngineConfig::delta_join_threshold`]: one
/// coordinated leapfrog walk over sorted column cursors per class
/// (or one batched hash probe per distinct key under the
/// `JoinStrategy::HashProbe` fallback) instead of one indexed probe per
/// tuple. The synthesized per-tuple body remains the below-threshold
/// fallback, and every mode produces the same emissions.
pub struct JoinPlan {
    /// The probe stages, in fixed variable order.
    pub stages: Vec<JoinStage>,
    /// Residual predicate over full row combinations.
    pub filter: JoinFilter,
    /// Emission per surviving row combination.
    pub emit: JoinEmit,
}

impl JoinPlan {
    /// The first stage's probe table (every plan has at least one stage).
    pub fn first_stage(&self) -> &JoinStage {
        &self.stages[0]
    }
}

impl std::fmt::Debug for JoinPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinPlan")
            .field("stages", &self.stages)
            .finish()
    }
}

/// A JStar rule.
pub struct Rule {
    /// Diagnostic name.
    pub name: String,
    /// The table whose tuples trigger this rule.
    pub trigger: TableId,
    /// The rule body.
    pub body: RuleBody,
    /// Optional causality model for static checking (§4). Rules without a
    /// model are reported as unproved by strict validation, mirroring the
    /// compiler warning the paper describes.
    pub model: Option<CausalityModel>,
    /// Inspectable (join → filter → emit) shape, when the rule was
    /// registered through a join-aware path. `None` marks an opaque
    /// closure body, which the engine always executes per tuple.
    pub plan: Option<Arc<JoinPlan>>,
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule")
            .field("name", &self.name)
            .field("trigger", &self.trigger)
            .field("has_model", &self.model.is_some())
            .field("plan", &self.plan)
            .finish()
    }
}
