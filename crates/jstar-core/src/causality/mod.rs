//! Static causality checking — the paper's SMT-based proof obligations (§4).
//!
//! For every `put` in a rule we must prove
//! `orderby(trigger) <= orderby(new tuple)`, and for every negative or
//! aggregate query `orderby(query) < orderby(trigger)`, under the rule's
//! path condition, the declared bindings between trigger and output fields,
//! and any table invariants. Failures are reported like the paper's
//! *Stratification error* warnings: the program still runs, but the
//! programmer is "strongly recommended" to fix it (and
//! [`crate::program::Program::validate_strict`] refuses to proceed).
//!
//! Rule authors describe each rule with a [`CausalityModel`] — the
//! information JStar's compiler would extract from rule source. Order keys
//! become sequences of terms: stratum constants compared in the
//! *declared* partial order, and `seq` fields compared by the
//! [`linear`] Fourier–Motzkin engine. The lexicographic goal is discharged
//! component by component.

pub mod linear;

pub use linear::{entails, entails_eq, satisfiable, Constraint, LinExpr, Rational};

use crate::orderby::{ResolvedComponent, ResolvedOrderBy};
use crate::schema::TableDef;
use crate::strata::{StratId, StrataOrder};
use std::collections::HashMap;

#[cfg(test)]
use crate::schema::TableId;

/// Interns the variable names used in a rule's causality model.
#[derive(Debug, Default, Clone)]
pub struct VarPool {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl VarPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(id) = self.index.get(name) {
            return *id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Looks a name up without interning.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// The name of a variable id (diagnostics).
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }
}

/// Builder-side context: hands out namespaced variables for the trigger
/// tuple (`trig.*`), the put tuple (`out.*`), a queried tuple (`q.*`) and
/// free auxiliaries.
#[derive(Debug, Default, Clone)]
pub struct ModelCtx {
    pub pool: VarPool,
}

impl ModelCtx {
    pub fn new() -> Self {
        Self::default()
    }

    /// A trigger-tuple field.
    pub fn trig(&mut self, col: &str) -> LinExpr {
        LinExpr::var(self.pool.intern(&format!("trig.{col}")))
    }

    /// An output-tuple field (the tuple being `put`).
    pub fn out(&mut self, col: &str) -> LinExpr {
        LinExpr::var(self.pool.intern(&format!("out.{col}")))
    }

    /// A queried-tuple field (for negative/aggregate queries).
    pub fn q(&mut self, col: &str) -> LinExpr {
        LinExpr::var(self.pool.intern(&format!("q.{col}")))
    }

    /// A free auxiliary variable (loop-bound values, edge weights, ...).
    pub fn aux(&mut self, name: &str) -> LinExpr {
        LinExpr::var(self.pool.intern(&format!("aux.{name}")))
    }

    /// A constant expression.
    pub fn k(&self, v: i64) -> LinExpr {
        LinExpr::constant(v)
    }
}

/// Model of one `put` statement inside a rule.
#[derive(Debug, Clone, Default)]
pub struct PutModel {
    /// Table receiving the new tuple.
    pub out_table: String,
    /// Path condition guarding this put (e.g. `trig.x < 400`).
    pub guard: Vec<Constraint>,
    /// Bindings relating `out.*` fields to `trig.*`/aux variables
    /// (e.g. `out.frame == trig.frame + 1`).
    pub bindings: Vec<Constraint>,
    /// Human-readable label for diagnostics.
    pub label: String,
}

/// Model of one negative or aggregate query inside a rule.
#[derive(Debug, Clone, Default)]
pub struct QueryModel {
    /// Table being queried.
    pub q_table: String,
    /// Path condition guarding the query.
    pub guard: Vec<Constraint>,
    /// Bindings constraining `q.*` fields.
    pub bindings: Vec<Constraint>,
    /// Human-readable label.
    pub label: String,
}

/// Everything the checker needs to know about one rule.
#[derive(Debug, Clone, Default)]
pub struct CausalityModel {
    /// The variable pool that all constraints were built with.
    pub ctx: ModelCtx,
    /// Facts that hold about any trigger tuple (table invariants, e.g.
    /// `trig.distance >= 0`).
    pub invariants: Vec<Constraint>,
    /// One model per `put` statement.
    pub puts: Vec<PutModel>,
    /// One model per negative/aggregate query.
    pub queries: Vec<QueryModel>,
}

/// One component of an order key, symbolically.
#[derive(Debug, Clone)]
enum Term {
    Strat(StratId),
    Lin(LinExpr),
}

/// The verdict on one proof obligation.
#[derive(Debug, Clone, PartialEq)]
pub struct ObligationResult {
    pub rule: String,
    pub label: String,
    pub proved: bool,
    pub message: String,
}

/// Turns a table's resolved orderby into symbolic terms over namespace
/// `ns` ("trig", "out" or "q"). Key truncation at `par` matches
/// [`ResolvedOrderBy::key_of`].
fn key_terms(def: &TableDef, orderby: &ResolvedOrderBy, ns: &str, pool: &mut VarPool) -> Vec<Term> {
    let mut terms = Vec::new();
    for c in &orderby.components {
        match c {
            ResolvedComponent::Strat { id, .. } => terms.push(Term::Strat(*id)),
            ResolvedComponent::Seq { field } => {
                let col = &def.columns[*field].name;
                terms.push(Term::Lin(LinExpr::var(pool.intern(&format!("{ns}.{col}")))));
            }
            ResolvedComponent::Par { .. } => break,
        }
    }
    terms
}

/// Attempts to prove `a <lex b` (when `strict`) or `a <=lex b` under the
/// assumptions. Returns `Err(reason)` on failure.
fn prove_lex(
    assumptions: &[Constraint],
    a: &[Term],
    b: &[Term],
    strict: bool,
    strata: &StrataOrder,
) -> Result<(), String> {
    match (a.first(), b.first()) {
        (None, None) => {
            if strict {
                Err("keys may be equal, but a strictly earlier key is required".into())
            } else {
                Ok(())
            }
        }
        // `a` exhausted: a is a proper prefix of b, so a < b.
        (None, Some(_)) => Ok(()),
        // `b` exhausted while `a` continues: a > b.
        (Some(_), None) => Err("trigger key extends beyond the put key, so it orders later".into()),
        (Some(Term::Strat(sa)), Some(Term::Strat(sb))) => {
            if sa == sb {
                return prove_lex(assumptions, &a[1..], &b[1..], strict, strata);
            }
            if strata.declared_lt(*sa, *sb) {
                return Ok(()); // strictly earlier at this level
            }
            if strata.declared_lt(*sb, *sa) {
                return Err(format!(
                    "stratum {} is declared after {}",
                    strata.name(*sa),
                    strata.name(*sb)
                ));
            }
            Err(format!(
                "no `order` declaration relates {} and {} — add one (e.g. `order {} < {}`)",
                strata.name(*sa),
                strata.name(*sb),
                strata.name(*sa),
                strata.name(*sb),
            ))
        }
        (Some(Term::Lin(ea)), Some(Term::Lin(eb))) => {
            if entails(assumptions, &ea.lt(eb)) {
                return Ok(());
            }
            if entails_eq(assumptions, ea, eb) {
                return prove_lex(assumptions, &a[1..], &b[1..], strict, strata);
            }
            if entails(assumptions, &ea.le(eb)) {
                // a <= b: in models where a < b we are done; in models where
                // a == b the remainder must carry the proof.
                let mut asm = assumptions.to_vec();
                asm.extend(ea.eq_(eb));
                return prove_lex(&asm, &a[1..], &b[1..], strict, strata);
            }
            Err(format!(
                "cannot prove {:?} <= {:?} at this key level",
                ea.coeffs, eb.coeffs
            ))
        }
        _ => Err("orderby lists have incompatible shapes at the same tree level".into()),
    }
}

/// Checks all obligations of one rule.
///
/// `defs_by_name` resolves the model's table names; `orderbys` is indexed
/// by `TableId`.
pub fn check_rule(
    rule_name: &str,
    trigger: &TableDef,
    model: &CausalityModel,
    defs_by_name: &HashMap<String, std::sync::Arc<TableDef>>,
    orderbys: &[ResolvedOrderBy],
    strata: &StrataOrder,
) -> Vec<ObligationResult> {
    let mut pool = model.ctx.pool.clone();
    let mut results = Vec::new();
    let trig_terms = key_terms(trigger, &orderbys[trigger.id.index()], "trig", &mut pool);

    for put in &model.puts {
        let label = if put.label.is_empty() {
            format!("put {}", put.out_table)
        } else {
            put.label.clone()
        };
        let Some(out_def) = defs_by_name.get(&put.out_table) else {
            results.push(ObligationResult {
                rule: rule_name.into(),
                label,
                proved: false,
                message: format!("unknown table {}", put.out_table),
            });
            continue;
        };
        let out_terms = key_terms(out_def, &orderbys[out_def.id.index()], "out", &mut pool);
        let mut asm = model.invariants.clone();
        asm.extend(put.guard.iter().cloned());
        asm.extend(put.bindings.iter().cloned());
        // Obligation: orderby(trig) <= orderby(out).
        let outcome = prove_lex(&asm, &trig_terms, &out_terms, false, strata);
        results.push(ObligationResult {
            rule: rule_name.into(),
            label,
            proved: outcome.is_ok(),
            message: match outcome {
                Ok(()) => "proved".into(),
                Err(e) => e,
            },
        });
    }

    for query in &model.queries {
        let label = if query.label.is_empty() {
            format!("query {}", query.q_table)
        } else {
            query.label.clone()
        };
        let Some(q_def) = defs_by_name.get(&query.q_table) else {
            results.push(ObligationResult {
                rule: rule_name.into(),
                label,
                proved: false,
                message: format!("unknown table {}", query.q_table),
            });
            continue;
        };
        let q_terms = key_terms(q_def, &orderbys[q_def.id.index()], "q", &mut pool);
        let mut asm = model.invariants.clone();
        asm.extend(query.guard.iter().cloned());
        asm.extend(query.bindings.iter().cloned());
        // Obligation: orderby(q) < orderby(trig) — the queried region must
        // be strictly in the past so its contents are already fixed.
        let outcome = prove_lex(&asm, &q_terms, &trig_terms, true, strata);
        results.push(ObligationResult {
            rule: rule_name.into(),
            label,
            proved: outcome.is_ok(),
            message: match outcome {
                Ok(()) => "proved".into(),
                Err(e) => e,
            },
        });
    }

    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orderby::{seq, strat, OrderComponent};
    use crate::schema::TableDefBuilder;
    use crate::strata::StrataBuilder;
    use std::sync::Arc;

    struct Fixture {
        defs: Vec<Arc<TableDef>>,
        by_name: HashMap<String, Arc<TableDef>>,
        orderbys: Vec<ResolvedOrderBy>,
        strata: StrataOrder,
    }

    type TableSpec<'a> = (&'a str, Vec<(&'a str, char)>, Vec<OrderComponent>);

    fn fixture(tables: Vec<TableSpec<'_>>, orders: &[&[&str]]) -> Fixture {
        let mut sb = StrataBuilder::new();
        for chain in orders {
            sb.order_chain(chain);
        }
        for (_, _, ob) in &tables {
            for c in ob {
                if let OrderComponent::Strat(n) = c {
                    sb.intern(n);
                }
            }
        }
        let strata = sb.build().unwrap();
        let mut defs = Vec::new();
        for (i, (name, cols, ob)) in tables.into_iter().enumerate() {
            let mut b = TableDefBuilder::new(name);
            for (cname, ty) in cols {
                b = match ty {
                    'i' => b.col_int(cname),
                    'd' => b.col_double(cname),
                    's' => b.col_str(cname),
                    _ => unreachable!(),
                };
            }
            let b = b.orderby(&ob);
            defs.push(Arc::new(TableDef {
                id: TableId(i as u32),
                name: b.name,
                columns: b.columns,
                key_arity: b.key_arity,
                orderby: b.orderby,
            }));
        }
        let orderbys: Vec<ResolvedOrderBy> = defs
            .iter()
            .map(|d| ResolvedOrderBy::resolve(d, &strata).unwrap())
            .collect();
        let by_name = defs
            .iter()
            .map(|d| (d.name.clone(), Arc::clone(d)))
            .collect();
        Fixture {
            defs,
            by_name,
            orderbys,
            strata,
        }
    }

    #[test]
    fn ship_rule_is_causal() {
        // foreach (Ship s) if (s.x < 400) put Ship(s.frame+1, ...)
        let fx = fixture(
            vec![(
                "Ship",
                vec![("frame", 'i'), ("x", 'i')],
                vec![strat("Int"), seq("frame")],
            )],
            &[],
        );
        let mut cx = ModelCtx::new();
        let guard = vec![cx.trig("x").lt(&cx.k(400))];
        let bindings = cx.out("frame").eq_(&(cx.trig("frame") + 1));
        let model = CausalityModel {
            ctx: cx,
            invariants: vec![],
            puts: vec![PutModel {
                out_table: "Ship".into(),
                guard,
                bindings,
                label: "move right".into(),
            }],
            queries: vec![],
        };
        let res = check_rule(
            "move",
            &fx.defs[0],
            &model,
            &fx.by_name,
            &fx.orderbys,
            &fx.strata,
        );
        assert_eq!(res.len(), 1);
        assert!(res[0].proved, "{}", res[0].message);
    }

    #[test]
    fn put_into_the_past_fails() {
        // put Ship(s.frame - 1, ...) must fail.
        let fx = fixture(
            vec![(
                "Ship",
                vec![("frame", 'i'), ("x", 'i')],
                vec![strat("Int"), seq("frame")],
            )],
            &[],
        );
        let mut cx = ModelCtx::new();
        let bindings = cx.out("frame").eq_(&(cx.trig("frame") - 1));
        let model = CausalityModel {
            ctx: cx,
            invariants: vec![],
            puts: vec![PutModel {
                out_table: "Ship".into(),
                guard: vec![],
                bindings,
                label: String::new(),
            }],
            queries: vec![],
        };
        let res = check_rule(
            "move",
            &fx.defs[0],
            &model,
            &fx.by_name,
            &fx.orderbys,
            &fx.strata,
        );
        assert!(!res[0].proved);
    }

    #[test]
    fn same_frame_put_is_allowed_non_strictly() {
        // put at the same timestamp: <= holds, so the put is fine.
        let fx = fixture(
            vec![(
                "Ship",
                vec![("frame", 'i'), ("x", 'i')],
                vec![strat("Int"), seq("frame")],
            )],
            &[],
        );
        let mut cx = ModelCtx::new();
        let bindings = cx.out("frame").eq_(&cx.trig("frame"));
        let model = CausalityModel {
            ctx: cx,
            invariants: vec![],
            puts: vec![PutModel {
                out_table: "Ship".into(),
                guard: vec![],
                bindings,
                label: String::new(),
            }],
            queries: vec![],
        };
        let res = check_rule(
            "same",
            &fx.defs[0],
            &model,
            &fx.by_name,
            &fx.orderbys,
            &fx.strata,
        );
        assert!(res[0].proved, "{}", res[0].message);
    }

    #[test]
    fn pvwatts_needs_order_declaration() {
        // Fig. 4: without `order PvWatts < SumMonth`, the aggregate query
        // in the SumMonth rule cannot be stratified.
        let tables = vec![
            (
                "PvWatts",
                vec![("year", 'i'), ("month", 'i')],
                vec![strat("PvWatts")],
            ),
            (
                "SumMonth",
                vec![("year", 'i'), ("month", 'i')],
                vec![strat("SumMonth")],
            ),
        ];
        let make_model = || {
            let cx = ModelCtx::new();
            CausalityModel {
                ctx: cx,
                invariants: vec![],
                puts: vec![],
                queries: vec![QueryModel {
                    q_table: "PvWatts".into(),
                    guard: vec![],
                    bindings: vec![],
                    label: "aggregate PvWatts by month".into(),
                }],
            }
        };

        // Without the order declaration: stratification failure.
        let fx = fixture(tables.clone(), &[]);
        let res = check_rule(
            "summarise",
            &fx.defs[1],
            &make_model(),
            &fx.by_name,
            &fx.orderbys,
            &fx.strata,
        );
        assert!(!res[0].proved);
        assert!(res[0].message.contains("order"), "{}", res[0].message);

        // With `order PvWatts < SumMonth`: proved.
        let fx = fixture(tables, &[&["Req", "PvWatts", "SumMonth"]]);
        let res = check_rule(
            "summarise",
            &fx.defs[1],
            &make_model(),
            &fx.by_name,
            &fx.orderbys,
            &fx.strata,
        );
        assert!(res[0].proved, "{}", res[0].message);
    }

    #[test]
    fn dijkstra_rule_checks() {
        // Estimate orderby (Int, seq distance, Estimate);
        // Done orderby (Int, seq distance, Done); order Estimate < Done.
        let fx = fixture(
            vec![
                (
                    "Estimate",
                    vec![("vertex", 'i'), ("distance", 'i')],
                    vec![strat("Int"), seq("distance"), strat("Estimate")],
                ),
                (
                    "Done",
                    vec![("vertex", 'i'), ("distance", 'i')],
                    vec![strat("Int"), seq("distance"), strat("Done")],
                ),
            ],
            &[&["Estimate", "Done"]],
        );
        let mut cx = ModelCtx::new();
        // put Done(dist.vertex, dist.distance): same distance, later stratum.
        let done_bindings = cx.out("distance").eq_(&cx.trig("distance"));
        // put Estimate(edge.to, dist.distance + edge.value), edge.value >= 1.
        let w = cx.aux("weight");
        let mut est_bindings = cx
            .out("distance")
            .eq_(&(cx.trig("distance").clone() + w.clone()));
        est_bindings.push(w.ge(&cx.k(1)));
        // negative query: Done(dist.vertex, [distance < dist.distance]).
        let neg_bindings = vec![cx.q("distance").lt(&cx.trig("distance"))];
        let model = CausalityModel {
            ctx: cx,
            invariants: vec![],
            puts: vec![
                PutModel {
                    out_table: "Done".into(),
                    guard: vec![],
                    bindings: done_bindings,
                    label: "put Done".into(),
                },
                PutModel {
                    out_table: "Estimate".into(),
                    guard: vec![],
                    bindings: est_bindings,
                    label: "relax edge".into(),
                },
            ],
            queries: vec![QueryModel {
                q_table: "Done".into(),
                guard: vec![],
                bindings: neg_bindings,
                label: "uniq? Done".into(),
            }],
        };
        let res = check_rule(
            "dijkstra",
            &fx.defs[0],
            &model,
            &fx.by_name,
            &fx.orderbys,
            &fx.strata,
        );
        for r in &res {
            assert!(r.proved, "{}: {}", r.label, r.message);
        }
    }

    #[test]
    fn zero_weight_edge_breaks_strict_relaxation_proof_but_not_put() {
        // With w >= 0 the Estimate put still proves (<= suffices for puts):
        // equal distance but Estimate == Estimate stratum, equal keys — OK.
        let fx = fixture(
            vec![(
                "Estimate",
                vec![("vertex", 'i'), ("distance", 'i')],
                vec![strat("Int"), seq("distance"), strat("Estimate")],
            )],
            &[],
        );
        let mut cx = ModelCtx::new();
        let w = cx.aux("weight");
        let mut bindings = cx
            .out("distance")
            .eq_(&(cx.trig("distance").clone() + w.clone()));
        bindings.push(w.ge(&cx.k(0)));
        let model = CausalityModel {
            ctx: cx,
            invariants: vec![],
            puts: vec![PutModel {
                out_table: "Estimate".into(),
                guard: vec![],
                bindings,
                label: String::new(),
            }],
            queries: vec![],
        };
        let res = check_rule(
            "relax",
            &fx.defs[0],
            &model,
            &fx.by_name,
            &fx.orderbys,
            &fx.strata,
        );
        assert!(res[0].proved, "{}", res[0].message);
    }

    #[test]
    fn unknown_table_reports_unproved() {
        let fx = fixture(vec![("A", vec![("t", 'i')], vec![seq("t")])], &[]);
        let model = CausalityModel {
            ctx: ModelCtx::new(),
            invariants: vec![],
            puts: vec![PutModel {
                out_table: "Nope".into(),
                ..Default::default()
            }],
            queries: vec![],
        };
        let res = check_rule(
            "r",
            &fx.defs[0],
            &model,
            &fx.by_name,
            &fx.orderbys,
            &fx.strata,
        );
        assert!(!res[0].proved);
        assert!(res[0].message.contains("unknown table"));
    }
}
