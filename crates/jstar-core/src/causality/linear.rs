//! A small linear-arithmetic entailment engine.
//!
//! The paper sends each causality proof obligation to an SMT solver (§4).
//! The obligations it shows are conjunctions of linear (in)equalities over
//! tuple timestamp fields — e.g. `out.frame == trig.frame + 1`,
//! `trig.x < 400` — implying a lexicographic ordering goal. That fragment
//! is decided exactly by **Fourier–Motzkin elimination** over the
//! rationals, which is what this module implements: no external solver
//! needed, same verdicts.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An exact rational with `i128` numerator/denominator, kept normalised
/// (gcd 1, positive denominator). Coefficients in causality obligations are
/// tiny, so overflow is not a practical concern; arithmetic saturates to a
/// panic in debug builds if it ever happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "zero denominator");
        let g = gcd(num, den).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    pub fn int(v: i64) -> Rational {
        Rational::new(v as i128, 1)
    }

    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    pub fn is_negative(self) -> bool {
        self.num < 0
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}
impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}
impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}
impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// A linear expression `Σ cᵢ·xᵢ + c` over interned variables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    /// Variable coefficients, keyed by variable id; zero coefficients are
    /// never stored.
    pub coeffs: BTreeMap<u32, Rational>,
    pub constant: Rational,
}

impl LinExpr {
    /// The expression `x`.
    pub fn var(v: u32) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, Rational::ONE);
        LinExpr {
            coeffs,
            constant: Rational::ZERO,
        }
    }

    /// The constant expression `k`.
    pub fn constant(k: i64) -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: Rational::int(k),
        }
    }

    /// Scales the whole expression.
    pub fn scale(&self, k: Rational) -> LinExpr {
        if k.is_zero() {
            return LinExpr::default();
        }
        LinExpr {
            coeffs: self.coeffs.iter().map(|(v, c)| (*v, *c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: u32) -> Rational {
        self.coeffs.get(&v).copied().unwrap_or(Rational::ZERO)
    }

    /// True when the expression mentions no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// `self <= other` as a constraint.
    pub fn le(&self, other: &LinExpr) -> Constraint {
        Constraint {
            expr: self.clone() - other.clone(),
            strict: false,
        }
    }

    /// `self < other` as a constraint.
    pub fn lt(&self, other: &LinExpr) -> Constraint {
        Constraint {
            expr: self.clone() - other.clone(),
            strict: true,
        }
    }

    /// `self >= other` as a constraint.
    pub fn ge(&self, other: &LinExpr) -> Constraint {
        other.le(self)
    }

    /// `self > other` as a constraint.
    pub fn gt(&self, other: &LinExpr) -> Constraint {
        other.lt(self)
    }

    /// `self == other` as a pair of constraints.
    pub fn eq_(&self, other: &LinExpr) -> Vec<Constraint> {
        vec![self.le(other), other.le(self)]
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        let mut coeffs = self.coeffs;
        for (v, c) in rhs.coeffs {
            let entry = coeffs.entry(v).or_insert(Rational::ZERO);
            *entry = *entry + c;
            if entry.is_zero() {
                coeffs.remove(&v);
            }
        }
        LinExpr {
            coeffs,
            constant: self.constant + rhs.constant,
        }
    }
}
impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + rhs.scale(-Rational::ONE)
    }
}
impl Add<i64> for LinExpr {
    type Output = LinExpr;
    fn add(self, k: i64) -> LinExpr {
        self + LinExpr::constant(k)
    }
}
impl Sub<i64> for LinExpr {
    type Output = LinExpr;
    fn sub(self, k: i64) -> LinExpr {
        self - LinExpr::constant(k)
    }
}

/// A constraint `expr <= 0` (or `expr < 0` when `strict`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    pub expr: LinExpr,
    pub strict: bool,
}

impl Constraint {
    /// The negation: `¬(e <= 0)` is `-e < 0`; `¬(e < 0)` is `-e <= 0`.
    pub fn negate(&self) -> Constraint {
        Constraint {
            expr: self.expr.scale(-Rational::ONE),
            strict: !self.strict,
        }
    }

    /// Evaluates a ground (variable-free) constraint.
    fn ground_holds(&self) -> bool {
        debug_assert!(self.expr.is_constant());
        if self.strict {
            self.expr.constant.is_negative()
        } else {
            !self.expr.constant.is_positive()
        }
    }
}

/// Decides satisfiability of a conjunction of linear constraints over the
/// rationals by Fourier–Motzkin elimination.
///
/// Sound and complete for this fragment. Worst-case exponential, but
/// obligations have a handful of variables and constraints.
pub fn satisfiable(constraints: &[Constraint]) -> bool {
    let mut system: Vec<Constraint> = constraints.to_vec();
    loop {
        // Ground constraints must hold; drop them once checked.
        let mut next = Vec::with_capacity(system.len());
        for c in system {
            if c.expr.is_constant() {
                if !c.ground_holds() {
                    return false;
                }
            } else {
                next.push(c);
            }
        }
        system = next;
        // Pick any remaining variable.
        let var = match system.iter().flat_map(|c| c.expr.coeffs.keys()).next() {
            Some(v) => *v,
            None => return true,
        };
        // Partition on the sign of var's coefficient.
        let mut uppers = Vec::new(); // coeff > 0: var bounded above
        let mut lowers = Vec::new(); // coeff < 0: var bounded below
        let mut rest = Vec::new();
        for c in system {
            let a = c.expr.coeff(var);
            if a.is_positive() {
                uppers.push(c);
            } else if a.is_negative() {
                lowers.push(c);
            } else {
                rest.push(c);
            }
        }
        // Combine every lower with every upper, cancelling `var`.
        for lo in &lowers {
            let a_lo = lo.expr.coeff(var); // negative
            for up in &uppers {
                let a_up = up.expr.coeff(var); // positive
                                               // lo·a_up + up·(-a_lo): positive multipliers keep direction.
                let combined = lo.expr.scale(a_up) + up.expr.scale(-a_lo);
                rest.push(Constraint {
                    expr: combined,
                    strict: lo.strict || up.strict,
                });
            }
        }
        system = rest;
    }
}

/// True when `assumptions` entail `goal` (i.e. `assumptions ∧ ¬goal` is
/// unsatisfiable).
pub fn entails(assumptions: &[Constraint], goal: &Constraint) -> bool {
    let mut system = assumptions.to_vec();
    system.push(goal.negate());
    !satisfiable(&system)
}

/// True when `assumptions` entail `a == b`.
pub fn entails_eq(assumptions: &[Constraint], a: &LinExpr, b: &LinExpr) -> bool {
    a.eq_(b).iter().all(|c| entails(assumptions, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> LinExpr {
        LinExpr::var(i)
    }
    fn k(c: i64) -> LinExpr {
        LinExpr::constant(c)
    }

    #[test]
    fn rational_arithmetic_normalises() {
        let half = Rational::new(2, 4);
        assert_eq!(half, Rational::new(1, 2));
        assert_eq!(half + half, Rational::ONE);
        assert_eq!(Rational::new(1, -2), Rational::new(-1, 2));
        assert_eq!((Rational::int(3) * Rational::new(1, 3)), Rational::ONE);
        assert_eq!(Rational::int(5).to_string(), "5");
        assert_eq!(Rational::new(1, 2).to_string(), "1/2");
    }

    #[test]
    fn trivially_satisfiable() {
        assert!(satisfiable(&[]));
        assert!(satisfiable(&[v(0).le(&k(10))]));
    }

    #[test]
    fn direct_contradiction() {
        // x <= 0 and x > 0
        let system = [v(0).le(&k(0)), v(0).gt(&k(0))];
        assert!(!satisfiable(&system));
    }

    #[test]
    fn strictness_matters() {
        // x <= 0 and x >= 0 is satisfiable (x = 0)...
        assert!(satisfiable(&[v(0).le(&k(0)), v(0).ge(&k(0))]));
        // ...but x < 0 and x >= 0 is not.
        assert!(!satisfiable(&[v(0).lt(&k(0)), v(0).ge(&k(0))]));
    }

    #[test]
    fn transitive_chain_detected() {
        // x < y, y < z, z < x is unsat.
        let system = [v(0).lt(&v(1)), v(1).lt(&v(2)), v(2).lt(&v(0))];
        assert!(!satisfiable(&system));
    }

    #[test]
    fn entailment_of_increment() {
        // The Ship rule: out = trig + 1 entails trig <= out.
        let trig = v(0);
        let out = v(1);
        let mut asm = trig.clone().add(1).eq_(&out);
        assert!(entails(&asm, &trig.le(&out)));
        assert!(entails(&asm, &trig.lt(&out)));
        // And it does NOT entail out <= trig.
        assert!(!entails(&asm, &out.le(&trig)));
        // With extra guard information the entailment is preserved.
        asm.push(trig.le(&k(400)));
        assert!(entails(&asm, &trig.lt(&out)));
    }

    #[test]
    fn entailment_needs_premises() {
        // Without any assumptions, x <= y is not provable.
        assert!(!entails(&[], &v(0).le(&v(1))));
        // x <= y is provable from itself.
        assert!(entails(&[v(0).le(&v(1))], &v(0).le(&v(1))));
        // Weakening: x < y proves x <= y, not vice versa.
        assert!(entails(&[v(0).lt(&v(1))], &v(0).le(&v(1))));
        assert!(!entails(&[v(0).le(&v(1))], &v(0).lt(&v(1))));
    }

    #[test]
    fn entails_eq_works() {
        let asm = v(0).clone().add(2).eq_(&v(1));
        assert!(entails_eq(&asm, &(v(0) + 2), &v(1)));
        assert!(!entails_eq(&asm, &v(0), &v(1)));
    }

    #[test]
    fn rational_coefficients_combine() {
        // 2x <= 6 and -3x <= -9 → x <= 3 and x >= 3 → x = 3: satisfiable;
        // adding x < 3 makes it unsat.
        let two_x = v(0).scale(Rational::int(2));
        let three_x = v(0).scale(Rational::int(3));
        let sat = [two_x.le(&k(6)), three_x.ge(&k(9))];
        assert!(satisfiable(&sat));
        let unsat = [two_x.le(&k(6)), three_x.ge(&k(9)), v(0).lt(&k(3))];
        assert!(!satisfiable(&unsat));
    }

    #[test]
    fn unconstrained_vars_are_free() {
        // y unconstrained: x <= y + 100 alone is satisfiable.
        assert!(satisfiable(&[v(0).le(&(v(1) + 100))]));
    }

    #[test]
    fn dijkstra_style_obligation() {
        // Estimate(edge.to, d + w): d' = d + w, w >= 1 entails d < d'.
        let d = v(0);
        let w = v(1);
        let d2 = v(2);
        let mut asm = (d.clone() + w.clone()).eq_(&d2);
        asm.push(w.ge(&k(1)));
        assert!(entails(&asm, &d.lt(&d2)));
        // With w >= 0 only, d <= d' holds but d < d' does not.
        let mut asm0 = (d.clone() + w.clone()).eq_(&d2);
        asm0.push(w.ge(&k(0)));
        assert!(entails(&asm0, &d.le(&d2)));
        assert!(!entails(&asm0, &d.lt(&d2)));
    }

    #[test]
    fn brute_force_agreement_on_small_systems() {
        // Compare FM satisfiability with grid search over small integer
        // points for systems in two variables.
        let cases: Vec<Vec<Constraint>> = vec![
            vec![v(0).le(&v(1)), v(1).le(&k(3)), v(0).ge(&k(-3))],
            vec![v(0).lt(&v(1)), v(1).lt(&v(0))],
            vec![(v(0) + 1).le(&v(1)), v(1).le(&(v(0) + 5))],
            vec![v(0).ge(&k(2)), v(0).le(&k(1))],
            vec![
                (v(0).clone() + v(1).clone()).le(&k(4)),
                v(0).ge(&k(5)),
                v(1).ge(&k(0)),
            ],
        ];
        for system in &cases {
            let fm = satisfiable(system);
            let mut brute = false;
            'outer: for x in -10..=10i64 {
                for y in -10..=10i64 {
                    let holds = system.iter().all(|c| {
                        let val = c.expr.coeff(0) * Rational::int(x)
                            + c.expr.coeff(1) * Rational::int(y)
                            + c.expr.constant;
                        if c.strict {
                            val.is_negative()
                        } else {
                            !val.is_positive()
                        }
                    });
                    if holds {
                        brute = true;
                        break 'outer;
                    }
                }
            }
            // Brute force over integers can miss rational-only solutions,
            // so only check one direction plus the specific unsat cases.
            if brute {
                assert!(fm, "brute found a point but FM said unsat: {system:?}");
            }
        }
    }
}
