//! Double-buffered epoch absorption: moving staged tuples into the
//! Delta queue, either serially at the step boundary or overlapped with
//! class execution.
//!
//! Tuples a step's workers `put` are staged in the
//! [`crate::delta::ShardedInbox`], binned by key prefix at push time.
//! Absorbing them is two phases: **partition** (swap the staging epoch
//! out of every shard — [`crate::delta::ShardedInbox::swap_epoch`]) and
//! **merge** (build one Delta subtree per partition and graft them —
//! [`crate::delta::DeltaTree::merge_partitioned`]).
//!
//! With [`super::EngineConfig::pipeline_depth`] ≥ 1 the coordinator runs
//! [`Pipeline::overlap`] while a forked class executes: it repeatedly
//! closes the staging epoch early and merges it with the subtree builds
//! on the pool's **background lane**, so only workers with no class
//! chunk left pick them up, and helps execute class chunks in between.
//! The Law of Causality guarantees staged tuples never belong to the
//! *current* step, and the Delta structures are canonical sets keyed by
//! position — so absorbing an epoch early produces exactly the queue
//! state the step-boundary drain would have, and the pop sequence is
//! unchanged. Whatever remains staged when the class finishes is taken
//! by the next serial [`Pipeline::absorb`].

use crate::delta::DeltaQueue;
use jstar_pool::{Scope, ThreadPool};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use super::config::EngineConfig;
use super::runtime::RunState;
use crate::orderby::OrderKey;
use crate::tuple::Tuple;

/// Reusable absorption state: the per-partition run buffers (recycled
/// across epochs so staging allocations survive the round trip) and the
/// per-table insert counters (flushed as **one** stats update per
/// touched table per epoch).
pub(super) struct Pipeline {
    runs: Vec<Vec<(OrderKey, Tuple)>>,
    inserted_by_table: Vec<u64>,
    merge_threshold: usize,
    /// Overlapped absorbs only trigger once at least this many tuples
    /// are staged: swapping near-empty epochs would buy nothing and
    /// cost a mutex round over every shard.
    min_overlap_batch: usize,
    depth: usize,
    timing: bool,
}

impl Pipeline {
    pub(super) fn new(state: &RunState, config: &EngineConfig) -> Pipeline {
        let merge_threshold = config.parallel_merge_threshold;
        Pipeline {
            runs: (0..state.inbox.partitions()).map(|_| Vec::new()).collect(),
            inserted_by_table: vec![0; state.program.defs().len()],
            merge_threshold,
            min_overlap_batch: (merge_threshold / 4).max(64),
            depth: if config.sequential {
                0
            } else {
                config.pipeline_depth
            },
            timing: config.record_steps,
        }
    }

    /// True when the drain/execute overlap is active.
    pub(super) fn pipelined(&self) -> bool {
        self.depth > 0
    }

    /// Serial absorb at the step boundary (the **absorb** phase):
    /// drains whatever is still staged — everything, when pipelining is
    /// off; the sub-`min_overlap_batch` remainder otherwise — so the
    /// following `pop_min_class` sees every tuple put by earlier steps.
    pub(super) fn absorb(
        &mut self,
        state: &RunState,
        tree: &mut DeltaQueue,
        pool: Option<&ThreadPool>,
    ) {
        if state.inbox.is_empty() {
            return;
        }
        let partition_start = self.timing.then(Instant::now);
        state.inbox.swap_epoch(&mut self.runs);
        let partition_elapsed = partition_start.map(|t0| t0.elapsed());

        let merge_start = self.timing.then(Instant::now);
        tree.merge_partitioned(
            &mut self.runs,
            pool,
            &mut self.inserted_by_table,
            self.merge_threshold,
        );
        let merge_elapsed = merge_start.map(|t0| t0.elapsed());

        self.flush_counts(state);
        if let (Some(p), Some(m)) = (partition_elapsed, merge_elapsed) {
            state
                .stats
                .partition_nanos
                .fetch_add(p.as_nanos() as u64, Ordering::Relaxed);
            state
                .stats
                .merge_nanos
                .fetch_add(m.as_nanos() as u64, Ordering::Relaxed);
            state
                .stats
                .drain_nanos
                .fetch_add((p + m).as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Overlapped absorb (the pipelined half of the **execute** phase):
    /// runs on the coordinator inside the class's fork/join scope.
    /// Alternates between (a) closing and merging staged epochs once
    /// they reach `min_overlap_batch` — subtree builds on the
    /// background lane, so class chunks preempt them — and (b) helping
    /// execute queued pool work, until every spawned chunk of the class
    /// has finished.
    pub(super) fn overlap(
        &mut self,
        scope: &Scope<'_>,
        state: &RunState,
        tree: &mut DeltaQueue,
        pool: &ThreadPool,
    ) {
        loop {
            let mut absorbed = false;
            if state.inbox.len() >= self.min_overlap_batch {
                let t0 = self.timing.then(Instant::now);
                if state.inbox.swap_epoch(&mut self.runs) > 0 {
                    // Parallel subtree builds only when no class chunk is
                    // still queued: with foreground work outstanding, the
                    // merge's internal join would have the coordinator
                    // executing chunks (delaying the graft and billing
                    // execute work to the overlap timer), and a saturated
                    // pool gains nothing from parallel builds anyway —
                    // the sequential loop on the otherwise-waiting
                    // coordinator *is* the overlap.
                    let merge_pool = (pool.pending_jobs() == 0).then_some(pool);
                    tree.merge_partitioned_overlapped(
                        &mut self.runs,
                        merge_pool,
                        &mut self.inserted_by_table,
                        self.merge_threshold,
                    );
                    self.flush_counts(state);
                    absorbed = true;
                }
                if let Some(t0) = t0 {
                    state
                        .stats
                        .overlap_nanos
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            }
            if scope.completed() {
                break;
            }
            if !absorbed && !scope.help() {
                // Nothing to absorb, nothing to help with: the chunks
                // are all running on workers. Park briefly; a finishing
                // chunk (or fresh staging) ends the wait.
                scope.wait_timeout(Duration::from_micros(200));
            }
        }
    }

    /// Publishes the epoch's per-table Delta-insert counts — one atomic
    /// update per touched table, not one per tuple.
    fn flush_counts(&mut self, state: &RunState) {
        for (ti, count) in self.inserted_by_table.iter_mut().enumerate() {
            if *count > 0 {
                state.stats.tables[ti]
                    .delta_inserts
                    .fetch_add(*count, Ordering::Relaxed);
                *count = 0;
            }
        }
    }
}
