//! The epoch ring: moving staged tuples into the Delta queue, either
//! serially at the step boundary or overlapped with class execution —
//! with up to [`super::EngineConfig::pipeline_depth`] closed epochs in
//! flight at once.
//!
//! Tuples a step's workers `put` are staged in the
//! [`crate::delta::ShardedInbox`], binned by key prefix at push time.
//! Absorbing them is three phases: **close** (swap the staging epoch out
//! of every shard — [`crate::delta::ShardedInbox::swap_epoch`]),
//! **build** (one Delta subtree per partition, on the pool's
//! **background lane** so only otherwise-idle workers touch them —
//! [`crate::delta::EpochBuild`]), and **graft** (the coordinator merges
//! the built subtrees in epoch order —
//! [`crate::delta::DeltaQueue::absorb_epoch`]).
//!
//! With `pipeline_depth` = 1 the ring holds one epoch: the coordinator
//! closes it mid-step and grafts it immediately (blocking on its builds
//! while helping execute queued work) — the PR 4 overlap. With depth
//! ≥ 2 the coordinator keeps closing epochs while earlier builds are
//! still in flight, grafting each the moment its builds complete; a
//! straggling build never stalls the swap cadence, and at the step
//! boundary most grafts are a splice of already-built subtrees. Depth
//! ≥ 2 also arms the [`super::schedule::Lookahead`]: each absorbed
//! epoch's minimal key is checked against the speculatively extracted
//! next class.
//!
//! The Law of Causality guarantees staged tuples never belong to the
//! *current* step, and the Delta structures are canonical sets keyed by
//! position — so absorbing epochs early (in any interleaving with
//! execution) produces exactly the queue state the step-boundary drain
//! would have, and the pop sequence is unchanged at every depth.
//!
//! ## The overlap controller
//!
//! A mid-step epoch swap only pays once enough tuples are staged (a
//! near-empty swap is a mutex round over every shard for nothing). The
//! swap point is chosen per step by [`OverlapController`]: with
//! [`super::EngineConfig::adaptive_overlap`] (default on) it tracks an
//! EWMA of the coordinator-side absorb cost per staged tuple and of the
//! execute-window length, and sizes the batch so one absorb costs about
//! a quarter of the window — big enough to amortise the swap, small
//! enough that the final absorb does not spill past the join. With the
//! flag off (or before any measurements exist) the fixed
//! `max(64, parallel_merge_threshold / 4)` trigger of the pre-feedback
//! engine applies.

use crate::delta::{DeltaQueue, EpochBuild};
use jstar_pool::{Scope, ThreadPool};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use super::config::{EngineConfig, MAX_PIPELINE_DEPTH};
use super::runtime::RunState;
use super::schedule::{Lookahead, Scheduler};
use crate::orderby::OrderKey;
use crate::tuple::Tuple;

/// How many overlapped absorbs the adaptive controller aims to fit in
/// one execute window.
const TARGET_OVERLAP_ROUNDS: f64 = 4.0;
/// EWMA smoothing factor for the controller's two signals.
const EWMA_ALPHA: f64 = 0.3;
/// Bounds on the adaptive swap point, in staged tuples.
const MIN_SWAP_POINT: usize = 64;
const MAX_SWAP_POINT: usize = 1 << 16;

/// Feedback-driven sizing of the overlapped absorb batches (the
/// "adaptive overlap batch size" of the module docs).
pub(super) struct OverlapController {
    adaptive: bool,
    /// The pre-feedback trigger, also the fallback before measurements.
    fixed: usize,
    /// EWMA of coordinator-side absorb nanoseconds per staged tuple;
    /// 0.0 until the first measurement.
    absorb_ns_per_tuple: f64,
    /// EWMA of the forked-class execute window in nanoseconds; 0.0
    /// until the first window closes.
    window_ns: f64,
    swap_point: usize,
}

impl OverlapController {
    fn new(adaptive: bool, merge_threshold: usize) -> OverlapController {
        let fixed = (merge_threshold / 4).max(MIN_SWAP_POINT);
        OverlapController {
            adaptive,
            fixed,
            absorb_ns_per_tuple: 0.0,
            window_ns: 0.0,
            swap_point: fixed,
        }
    }

    /// The number of staged tuples at which the next mid-step epoch
    /// swap triggers.
    fn swap_point(&self) -> usize {
        self.swap_point
    }

    /// True when the controller wants absorb/window timings even though
    /// the stats timers are off.
    fn needs_clock(&self) -> bool {
        self.adaptive
    }

    /// Feeds one absorbed epoch: `staged` tuples took `dur` of
    /// coordinator time (swap + graft, plus build wait if the epoch was
    /// not ready).
    fn record_absorb(&mut self, staged: usize, dur: Duration) {
        if !self.adaptive || staged == 0 {
            return;
        }
        let per = dur.as_nanos() as f64 / staged as f64;
        self.absorb_ns_per_tuple = ewma(self.absorb_ns_per_tuple, per);
    }

    /// Feeds one closed execute window and recomputes the swap point
    /// for the next step.
    fn record_window(&mut self, dur: Duration) {
        if !self.adaptive {
            return;
        }
        self.window_ns = ewma(self.window_ns, dur.as_nanos() as f64);
        if self.absorb_ns_per_tuple > 0.0 && self.window_ns > 0.0 {
            let batch = self.window_ns / TARGET_OVERLAP_ROUNDS / self.absorb_ns_per_tuple;
            self.swap_point = (batch as usize).clamp(MIN_SWAP_POINT, MAX_SWAP_POINT);
        } else {
            self.swap_point = self.fixed;
        }
    }
}

fn ewma(prev: f64, sample: f64) -> f64 {
    if prev == 0.0 {
        sample
    } else {
        prev + EWMA_ALPHA * (sample - prev)
    }
}

/// Reusable absorption state: the epoch ring, the recycled
/// per-partition run buffers, the per-table insert counters (flushed as
/// **one** stats update per touched table per epoch) and the overlap
/// controller.
pub(super) struct Pipeline {
    /// Closed epochs in flight, oldest first; absorbed strictly in
    /// order. Never longer than `depth`.
    ring: VecDeque<EpochBuild>,
    /// Spare run-buffer sets, recycled through the ring so staging
    /// allocations survive the round trip.
    spare: Vec<Vec<Vec<(OrderKey, Tuple)>>>,
    inserted_by_table: Vec<u64>,
    merge_threshold: usize,
    depth: usize,
    /// Sequence number of the most recently *closed* epoch.
    epoch_seq: u64,
    /// Sequence number of the most recently *absorbed* epoch — the
    /// [`crate::delta::PreparedClass::epoch_mark`] a speculation
    /// prepared now can truthfully carry (every epoch up to and
    /// including it is reflected in the queue; later ones validate on
    /// absorb).
    absorbed_seq: u64,
    controller: OverlapController,
    partitions: usize,
    timing: bool,
}

impl Pipeline {
    pub(super) fn new(state: &RunState, config: &EngineConfig) -> Pipeline {
        let merge_threshold = config.parallel_merge_threshold;
        let depth = if config.sequential {
            0
        } else {
            config.pipeline_depth.min(MAX_PIPELINE_DEPTH)
        };
        Pipeline {
            ring: VecDeque::with_capacity(depth),
            spare: vec![(0..state.inbox.partitions()).map(|_| Vec::new()).collect()],
            inserted_by_table: vec![0; state.program.defs().len()],
            merge_threshold,
            depth,
            epoch_seq: 0,
            absorbed_seq: 0,
            controller: OverlapController::new(config.adaptive_overlap, merge_threshold),
            partitions: state.inbox.partitions(),
            timing: config.record_steps,
        }
    }

    /// True when the drain/execute overlap is active.
    pub(super) fn pipelined(&self) -> bool {
        self.depth > 0
    }

    /// True when the lookahead machine is armed (depth ≥ 2).
    pub(super) fn lookahead_enabled(&self) -> bool {
        self.depth >= 2
    }

    /// The clamped depth the run actually executes with (0 in
    /// sequential mode) — reported in
    /// [`super::RunReport::pipeline_depth`].
    pub(super) fn effective_depth(&self) -> usize {
        self.depth
    }

    /// The sequence number of the most recently absorbed epoch — the
    /// [`crate::delta::PreparedClass::epoch_mark`] a speculation
    /// prepared now should carry.
    pub(super) fn absorbed_seq(&self) -> u64 {
        self.absorbed_seq
    }

    fn take_buffers(&mut self) -> Vec<Vec<(OrderKey, Tuple)>> {
        self.spare
            .pop()
            .unwrap_or_else(|| (0..self.partitions).map(|_| Vec::new()).collect())
    }

    /// Closes the current staging epoch into the ring. Returns false
    /// (and recycles the buffers) when nothing was staged.
    fn close_epoch(
        &mut self,
        state: &RunState,
        tree: &DeltaQueue,
        build_pool: Option<&ThreadPool>,
    ) -> bool {
        let mut runs = self.take_buffers();
        if state.inbox.swap_epoch(&mut runs) == 0 {
            self.spare.push(runs);
            return false;
        }
        self.epoch_seq += 1;
        self.ring.push_back(EpochBuild::start(
            tree.kind(),
            self.epoch_seq,
            runs,
            build_pool,
            self.inserted_by_table.len(),
            self.merge_threshold,
        ));
        true
    }

    /// Grafts one epoch into the queue (joining its builds if still in
    /// flight — helping the pool meanwhile), validates the lookahead
    /// against its minimal key, and recycles the buffers. Returns the
    /// coordinator time spent.
    ///
    /// `clean_timing` marks a duration that measures only absorb work:
    /// a blocking join on a *not-ready* epoch executes queued foreground
    /// class chunks while it waits, so its duration would poison the
    /// controller's absorb-cost EWMA — such absorbs pass false and are
    /// excluded from the feedback signal.
    fn absorb_one(
        &mut self,
        epoch: EpochBuild,
        state: &RunState,
        tree: &mut DeltaQueue,
        pool: Option<&ThreadPool>,
        lookahead: &mut Lookahead,
        clean_timing: bool,
    ) -> Option<Duration> {
        let t0 = (self.timing || self.controller.needs_clock()).then(Instant::now);
        let staged = epoch.staged();
        self.absorbed_seq = epoch.seq();
        let absorbed = tree.absorb_epoch(epoch, pool, &mut self.inserted_by_table);
        self.flush_counts(state);
        lookahead.validate(
            self.absorbed_seq,
            absorbed.min_key.as_ref(),
            tree,
            &state.stats,
        );
        self.spare.push(absorbed.buffers);
        let elapsed = t0.map(|t| t.elapsed());
        if clean_timing {
            if let Some(d) = elapsed {
                self.controller.record_absorb(staged, d);
            }
        }
        elapsed
    }

    /// Serial absorb at the step boundary (the **absorb** phase):
    /// drains the ring in order, then whatever is still staged —
    /// everything, when pipelining is off; the sub-swap-point remainder
    /// otherwise — so the following extract sees every tuple put by
    /// earlier steps.
    pub(super) fn absorb(
        &mut self,
        state: &RunState,
        tree: &mut DeltaQueue,
        pool: Option<&ThreadPool>,
        lookahead: &mut Lookahead,
    ) {
        // In-flight epochs from the previous execute window, in order.
        // Clean timing: the class has joined, so nothing foreign rides
        // inside the join.
        while let Some(epoch) = self.ring.pop_front() {
            let spent = self.absorb_one(epoch, state, tree, pool, lookahead, true);
            if self.timing {
                if let Some(d) = spent {
                    let nanos = d.as_nanos() as u64;
                    state.stats.merge_nanos.fetch_add(nanos, Ordering::Relaxed);
                    state.stats.drain_nanos.fetch_add(nanos, Ordering::Relaxed);
                }
            }
        }
        if state.inbox.is_empty() {
            return;
        }

        // The staged remainder: one final epoch, closed (into the
        // just-drained ring) and absorbed here. `swap_epoch` is exact
        // at the boundary — the scope join ordered every worker push
        // before this read.
        let partition_start = self.timing.then(Instant::now);
        let closed = self.close_epoch(state, tree, pool);
        let partition_elapsed = partition_start.map(|t0| t0.elapsed());
        if !closed {
            return;
        }
        let merge_start = self.timing.then(Instant::now);
        // lint: allow(expect): the early-return above guarantees a queued epoch.
        let epoch = self.ring.pop_front().expect("epoch closed above");
        self.absorb_one(epoch, state, tree, pool, lookahead, true);
        let merge_elapsed = merge_start.map(|t0| t0.elapsed());

        if let (Some(p), Some(m)) = (partition_elapsed, merge_elapsed) {
            state
                .stats
                .partition_nanos
                .fetch_add(p.as_nanos() as u64, Ordering::Relaxed);
            state
                .stats
                .merge_nanos
                .fetch_add(m.as_nanos() as u64, Ordering::Relaxed);
            state
                .stats
                .drain_nanos
                .fetch_add((p + m).as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Overlapped absorb (the pipelined half of the **execute** phase):
    /// runs on the coordinator inside the class's fork/join scope.
    /// Cycles through (a) closing staged epochs into the ring once they
    /// reach the controller's swap point, (b) grafting epochs whose
    /// background builds have completed — blocking on the oldest when
    /// the ring is full — and (c) helping execute queued pool work,
    /// until every spawned chunk of the class has finished. With the
    /// lookahead armed, an invalidated speculation is re-prepared right
    /// after the absorb that killed it.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn overlap(
        &mut self,
        scope: &Scope<'_>,
        state: &RunState,
        tree: &mut DeltaQueue,
        pool: &ThreadPool,
        lookahead: &mut Lookahead,
        scheduler: &Scheduler,
    ) {
        let window_start = self.controller.needs_clock().then(Instant::now);
        loop {
            let mut progressed = false;
            if self.ring.len() < self.depth && state.inbox.len() >= self.controller.swap_point() {
                // At depth 1 the graft follows immediately, so a busy
                // pool gains nothing from parallel builds — the
                // sequential insert loop on the otherwise-waiting
                // coordinator *is* the overlap (and it keeps execute
                // help out of the overlap timer). Deeper rings never
                // block here, so background builds always pay.
                let build_pool = if self.depth >= 2 || pool.pending_jobs() == 0 {
                    Some(pool)
                } else {
                    None
                };
                let t0 = self.timing.then(Instant::now);
                progressed |= self.close_epoch(state, tree, build_pool);
                if let Some(t0) = t0 {
                    state
                        .stats
                        .overlap_nanos
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            }
            // Graft whatever the background lane has finished, oldest
            // first; when the ring is full, block on the oldest to keep
            // the swap cadence (the join helps execute class chunks —
            // such forced absorbs are excluded from the controller's
            // absorb-cost signal, and the help share they bill to the
            // overlap timer is the caveat noted on
            // [`super::RunReport::overlap_time`]).
            while self
                .ring
                .front()
                .is_some_and(|e| e.is_ready() || self.ring.len() >= self.depth)
            {
                let ready = self.ring.front().is_some_and(|e| e.is_ready());
                // lint: allow(expect): the while-let condition proved front() is Some.
                let epoch = self.ring.pop_front().expect("front checked");
                let spent = self.absorb_one(epoch, state, tree, Some(pool), lookahead, ready);
                if self.timing {
                    if let Some(d) = spent {
                        state
                            .stats
                            .overlap_nanos
                            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
                    }
                }
                lookahead.prepare(tree, scheduler, Some(pool), self.absorbed_seq);
                progressed = true;
            }
            if scope.completed() {
                break;
            }
            if !progressed && !scope.help() {
                // Nothing to absorb, nothing to help with: the chunks
                // are all running on workers. Park briefly; a finishing
                // chunk (or fresh staging) ends the wait.
                scope.wait_timeout(Duration::from_micros(200));
            }
        }
        if let Some(t0) = window_start {
            self.controller.record_window(t0.elapsed());
        }
    }

    /// Publishes the epoch's per-table Delta-insert counts — one atomic
    /// update per touched table, not one per tuple.
    fn flush_counts(&mut self, state: &RunState) {
        for (ti, count) in self.inserted_by_table.iter_mut().enumerate() {
            if *count > 0 {
                state.stats.tables[ti]
                    .delta_inserts
                    .fetch_add(*count, Ordering::Relaxed);
                *count = 0;
            }
        }
    }
}
