//! The result of one engine run: counters, phase timers, and the
//! derived pipeline metrics.

use std::time::Duration;

/// The result of one engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Number of Delta extraction steps.
    pub steps: u64,
    /// Tuples processed out of the Delta set.
    pub tuples_processed: u64,
    /// Wall time of the run.
    pub elapsed: Duration,
    /// Coordinator time spent draining staged tuples into the Delta queue
    /// *serially* — i.e. while execution waited (the sum of
    /// `partition_time` and `merge_time`). Drain work the pipelined
    /// coordinator performed during class execution is counted in
    /// [`RunReport::overlap_time`] instead. Zero unless
    /// [`super::EngineConfig::record_steps`] is set — the per-step
    /// timers are profiling instrumentation, not free.
    pub drain_time: Duration,
    /// Drain phase 1: swapping the per-worker staging bins out into
    /// per-partition runs. Zero unless
    /// [`super::EngineConfig::record_steps`] is set.
    pub partition_time: Duration,
    /// Drain phase 2: merging the partition runs into the Delta queue
    /// (parallel subtree builds + the coordinator's graft, or the
    /// sequential fallback). Zero unless
    /// [`super::EngineConfig::record_steps`] is set.
    pub merge_time: Duration,
    /// Drain work (epoch swaps + background-lane merges) performed by
    /// the pipelined coordinator **while a class was executing** — time
    /// hidden under [`RunReport::execute_time`]'s wall clock instead of
    /// stalling the step loop. Zero when
    /// [`super::EngineConfig::pipeline_depth`] is 0, and zero unless
    /// [`super::EngineConfig::record_steps`] is set. Caveat at depths
    /// ≥ 2: when the epoch ring is full the coordinator blocks on the
    /// oldest epoch's builds and helps execute class chunks while it
    /// waits, so a small share of this timer can be execute help
    /// rather than drain work (such absorbs are excluded from the
    /// adaptive controller's feedback signal for the same reason).
    pub overlap_time: Duration,
    /// Time spent executing equivalence classes (Gamma inserts + rules).
    /// Zero unless [`super::EngineConfig::record_steps`] is set.
    pub execute_time: Duration,
    /// Classes executed inline on the coordinator.
    pub inline_classes: u64,
    /// Classes fanned out to the fork/join pool.
    pub forked_classes: u64,
    /// The **effective** pipeline depth the run executed with:
    /// [`super::EngineConfig::pipeline_depth`] clamped to
    /// [`super::MAX_PIPELINE_DEPTH`], and 0 in sequential mode. A
    /// configured depth the engine cannot honour is visible here
    /// instead of being silently downgraded.
    pub pipeline_depth: usize,
    /// Steps that started from a pre-extracted class: the lookahead
    /// machine (`pipeline_depth ≥ 2`) popped the next minimal class and
    /// built its execution plan during the *previous* step's execution,
    /// and no later epoch merge ordered at or below it — the extract
    /// phase cost nothing on the critical path.
    pub lookahead_hits: u64,
    /// Speculative extractions rolled back because a merged epoch's
    /// minimum ordered at or below the prepared class (its tuples were
    /// returned to the Delta queue; the step then popped normally). A
    /// miss costs roughly one extra insert+extract of the class; after
    /// a streak of consecutive misses the lookahead pauses itself and
    /// only probes the workload periodically, so a persistently
    /// adversarial workload pays the churn on a small fraction of
    /// steps rather than all of them.
    pub lookahead_misses: u64,
    /// Checkpoints written during the run (see
    /// [`super::EngineConfig::checkpoint`]).
    pub checkpoints: u64,
    /// Coordinator time spent writing checkpoints (quiescing the Delta
    /// queue, serializing, fsync-free atomic rename, rotation). Always
    /// recorded when checkpointing is on — unlike the per-step phase
    /// timers it does not require
    /// [`super::EngineConfig::record_steps`], because checkpoints are
    /// rare enough that the two clock reads per checkpoint are free.
    pub checkpoint_time: Duration,
    /// Classes executed in batched **delta-join** mode: the class
    /// cleared [`super::EngineConfig::delta_join_threshold`] and its
    /// trigger table had at least one join-plan rule, so those rules
    /// ran as one grouped Gamma pass instead of one probe per tuple.
    pub delta_join_classes: u64,
    /// Batched Gamma probes issued by delta-join execution — one per
    /// (rule × distinct join-key group). Compare against
    /// [`RunReport::delta_join_build_tuples`]: per-tuple mode would
    /// have issued one probe per build tuple instead.
    pub delta_join_probes: u64,
    /// Trigger tuples folded into delta-join build tables (the
    /// "delta" side of the semi-naive join).
    pub delta_join_build_tuples: u64,
    /// Total Gamma queries issued by rule bodies across all tables —
    /// per-tuple probes, batched delta-join probes and leapfrog cursor
    /// opens alike, so an A/B run shows the probe-count reduction
    /// directly.
    pub gamma_probes: u64,
    /// Galloping cursor repositionings performed by leapfrog join
    /// walks (`join::<..>()` reads and delta-join classes under
    /// [`super::JoinStrategy::Leapfrog`]). Single-step `next` advances
    /// are free and not counted, so `gamma_probes + join_seeks` is the
    /// walk's total store-search cost — the number to compare against
    /// the hash-probe strategy's `gamma_probes`.
    pub join_seeks: u64,
    /// Sorted column views opened for leapfrog join walks — one per
    /// (walk × relation), each also counted in
    /// [`RunReport::gamma_probes`].
    pub join_cursor_opens: u64,
    /// Cursor opens served from the generation-stamped index cache
    /// (including after a journal-suffix catch-up) — see
    /// [`super::EngineConfig::index_cache`].
    pub index_cache_hits: u64,
    /// Cursor opens that built a column view from scratch: cache off,
    /// store without a claim journal, first open of a column, or
    /// wholesale invalidation (compaction epoch / tombstone change).
    pub index_cache_misses: u64,
    /// Tuples sorted and merged by incremental journal-suffix catch-ups
    /// (warm opens plus eager-refresh jobs). The cache's point is that
    /// this grows with the *new* tuples per step, while…
    pub index_catchup_tuples: u64,
    /// …tuples sorted by full cold builds — under `Off` this re-counts
    /// every live tuple on every walk, which is exactly the repeated
    /// work the cache removes (the bench gate demands a ≥ 5× reduction
    /// on warm triangles).
    pub index_build_tuples: u64,
    /// Collected `println` output (order not significant).
    pub output: Vec<String>,
}

impl RunReport {
    /// Delta-set throughput: tuples processed per second of wall time.
    pub fn tuples_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.tuples_processed as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of accounted step time the coordinator spent draining
    /// serially (vs. executing). A high value means the drain, not the
    /// hardware, sets the speed limit; the pipeline's job is to move
    /// drain work out of this number and into
    /// [`RunReport::overlap_fraction`].
    pub fn drain_fraction(&self) -> f64 {
        let total = self.drain_time.as_secs_f64() + self.execute_time.as_secs_f64();
        if total > 0.0 {
            self.drain_time.as_secs_f64() / total
        } else {
            0.0
        }
    }

    /// Fraction of the run's total drain work that was overlapped with
    /// class execution: `overlap / (overlap + serial drain)`. 0.0 with
    /// pipelining off (or nothing drained); approaching 1.0 means the
    /// merge is fully hidden behind execution.
    pub fn overlap_fraction(&self) -> f64 {
        let total = self.overlap_time.as_secs_f64() + self.drain_time.as_secs_f64();
        if total > 0.0 {
            self.overlap_time.as_secs_f64() / total
        } else {
            0.0
        }
    }

    /// Mean serial-drain and execute time per step.
    pub fn per_step(&self) -> (Duration, Duration) {
        let steps = self.steps.max(1) as u32;
        (self.drain_time / steps, self.execute_time / steps)
    }

    /// Fraction of speculative extractions that survived to execution:
    /// `hits / (hits + misses)`. 0.0 when the lookahead never engaged
    /// (`pipeline_depth < 2`, or no forked class opened a window).
    /// Approaching 1.0 means step N+1's fan-out almost always launched
    /// the instant step N joined.
    pub fn lookahead_hit_rate(&self) -> f64 {
        let total = self.lookahead_hits + self.lookahead_misses;
        if total > 0 {
            self.lookahead_hits as f64 / total as f64
        } else {
            0.0
        }
    }

    /// Fraction of cursor opens served from the index cache:
    /// `hits / (hits + misses)`. 0.0 when no join walk opened a cursor
    /// (or the cache is off — every open is then a miss).
    pub fn index_cache_hit_rate(&self) -> f64 {
        let total = self.index_cache_hits + self.index_cache_misses;
        if total > 0 {
            self.index_cache_hits as f64 / total as f64
        } else {
            0.0
        }
    }
}
