//! The result of one engine run: counters, phase timers, and the
//! derived pipeline metrics.

use std::time::Duration;

/// The result of one engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Number of Delta extraction steps.
    pub steps: u64,
    /// Tuples processed out of the Delta set.
    pub tuples_processed: u64,
    /// Wall time of the run.
    pub elapsed: Duration,
    /// Coordinator time spent draining staged tuples into the Delta queue
    /// *serially* — i.e. while execution waited (the sum of
    /// `partition_time` and `merge_time`). Drain work the pipelined
    /// coordinator performed during class execution is counted in
    /// [`RunReport::overlap_time`] instead. Zero unless
    /// [`super::EngineConfig::record_steps`] is set — the per-step
    /// timers are profiling instrumentation, not free.
    pub drain_time: Duration,
    /// Drain phase 1: swapping the per-worker staging bins out into
    /// per-partition runs. Zero unless
    /// [`super::EngineConfig::record_steps`] is set.
    pub partition_time: Duration,
    /// Drain phase 2: merging the partition runs into the Delta queue
    /// (parallel subtree builds + the coordinator's graft, or the
    /// sequential fallback). Zero unless
    /// [`super::EngineConfig::record_steps`] is set.
    pub merge_time: Duration,
    /// Drain work (epoch swaps + background-lane merges) performed by
    /// the pipelined coordinator **while a class was executing** — time
    /// hidden under [`RunReport::execute_time`]'s wall clock instead of
    /// stalling the step loop. Zero when
    /// [`super::EngineConfig::pipeline_depth`] is 0, and zero unless
    /// [`super::EngineConfig::record_steps`] is set.
    pub overlap_time: Duration,
    /// Time spent executing equivalence classes (Gamma inserts + rules).
    /// Zero unless [`super::EngineConfig::record_steps`] is set.
    pub execute_time: Duration,
    /// Classes executed inline on the coordinator.
    pub inline_classes: u64,
    /// Classes fanned out to the fork/join pool.
    pub forked_classes: u64,
    /// Collected `println` output (order not significant).
    pub output: Vec<String>,
}

impl RunReport {
    /// Delta-set throughput: tuples processed per second of wall time.
    pub fn tuples_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.tuples_processed as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of accounted step time the coordinator spent draining
    /// serially (vs. executing). A high value means the drain, not the
    /// hardware, sets the speed limit; the pipeline's job is to move
    /// drain work out of this number and into
    /// [`RunReport::overlap_fraction`].
    pub fn drain_fraction(&self) -> f64 {
        let total = self.drain_time.as_secs_f64() + self.execute_time.as_secs_f64();
        if total > 0.0 {
            self.drain_time.as_secs_f64() / total
        } else {
            0.0
        }
    }

    /// Fraction of the run's total drain work that was overlapped with
    /// class execution: `overlap / (overlap + serial drain)`. 0.0 with
    /// pipelining off (or nothing drained); approaching 1.0 means the
    /// merge is fully hidden behind execution.
    pub fn overlap_fraction(&self) -> f64 {
        let total = self.overlap_time.as_secs_f64() + self.drain_time.as_secs_f64();
        if total > 0.0 {
            self.overlap_time.as_secs_f64() / total
        } else {
            0.0
        }
    }

    /// Mean serial-drain and execute time per step.
    pub fn per_step(&self) -> (Duration, Duration) {
        let steps = self.steps.max(1) as u32;
        (self.drain_time / steps, self.execute_time / steps)
    }
}
