//! Engine configuration — the paper's compiler flags and runtime
//! options, kept *outside* the program source (workflow stages 3–4).

use crate::delta::DeltaKind;
use crate::gamma::{IndexCachePolicy, StoreKind, DEFAULT_INDEX_CACHE_MAX_BYTES};
use crate::schema::TableId;
use crate::tuple::Tuple;
use jstar_pool::ThreadPool;
use std::collections::HashMap;
use std::sync::Arc;

/// A tuple-lifetime predicate (§5 step 4): returns true to keep a tuple.
pub type LifetimeHint = Arc<dyn Fn(&Tuple) -> bool + Send + Sync>;

/// The deepest supported [`EngineConfig::pipeline_depth`]: the epoch
/// ring holds at most this many closed staging epochs in flight.
/// Requested depths above it are clamped (and the effective depth is
/// reported in [`super::RunReport::pipeline_depth`]) — a configuration
/// lie is made visible instead of silently honoured.
pub const MAX_PIPELINE_DEPTH: usize = 8;

/// Engine configuration — the paper's compiler flags and runtime options,
/// kept *outside* the program source (workflow stages 3–4).
#[derive(Clone)]
pub struct EngineConfig {
    /// `-sequential`: single-threaded execution with sequential stores.
    pub sequential: bool,
    /// `--threads=N`: fork/join pool size for parallel execution.
    pub threads: usize,
    /// `-noDelta T` tables: bypass the Delta tree.
    pub no_delta: Vec<TableId>,
    /// `-noGamma T` tables: never stored in Gamma.
    pub no_gamma: Vec<TableId>,
    /// Per-table store overrides (the paper's data-structure hints).
    pub stores: HashMap<TableId, StoreKind>,
    /// Check field types on every put (cheap; on by default).
    pub type_check: bool,
    /// Check the Law of Causality on every put (on by default; §4).
    pub enforce_causality: bool,
    /// Record a per-step log for parallelism profiling.
    pub record_steps: bool,
    /// Abort after this many steps — a guard for accidentally non-causal
    /// infinite programs like §3's unconditional Ship rule.
    pub max_steps: Option<u64>,
    /// Share an existing pool instead of creating one per engine.
    pub pool: Option<Arc<ThreadPool>>,
    /// Which Delta structure to use (the tree of the paper, or the flat
    /// ordered map kept as an ablation).
    pub delta: DeltaKind,
    /// Tuple-lifetime hints (§5 step 4): after every `hint_interval` steps
    /// the engine drops tuples the hook rejects from the table's Gamma
    /// store. "We simply retain all tuples, or use manual lifetime hints
    /// from the user to determine when tuples can be discarded."
    pub lifetime_hints: Vec<(TableId, LifetimeHint)>,
    /// How often (in steps) lifetime hints run; 0 disables them.
    pub hint_interval: u64,
    /// Classes of at most this many tuples execute inline on the
    /// coordinator instead of being forked to the pool: below this width
    /// the fork/join round trip costs more than the work. Ignored in
    /// sequential mode (everything is inline there).
    pub inline_class_threshold: usize,
    /// Staged batches of at least this many tuples are merged into the
    /// Delta queue by pool workers (one subtree per key-prefix
    /// partition, grafted by the coordinator); smaller batches take the
    /// sequential insert loop, whose per-tuple cost is below the
    /// fork/join round trip at that size. Ignored in sequential mode.
    pub parallel_merge_threshold: usize,
    /// Drain/execute pipelining depth — how many step artifacts the
    /// lookahead step machine keeps in flight:
    ///
    /// * `0` — the strictly alternating loop (absorb, then execute;
    ///   workers idle during each other's phase);
    /// * `1` (the default) — the coordinator closes staging epochs and
    ///   merges their Delta subtrees *while* a forked class executes,
    ///   with the subtree builds on the pool's background lane so
    ///   execute chunks always preempt them; one epoch in flight;
    /// * `≥ 2` — a ring of up to `pipeline_depth` closed epochs, each
    ///   with its subtree builds in flight, **plus** the lookahead:
    ///   while step N executes the next minimal class is pre-extracted
    ///   and its execution plan built speculatively, so step N+1's
    ///   fan-out launches the instant step N joins (or the speculation
    ///   is rolled back when a merge orders at or below it — see
    ///   [`super::RunReport::lookahead_hits`]).
    ///
    /// Values above [`MAX_PIPELINE_DEPTH`] are clamped; the effective
    /// depth is reported in [`super::RunReport::pipeline_depth`].
    /// Results are bit-identical at every depth (the Delta structures
    /// are canonical sets, and invalidated speculations are returned to
    /// them before anything observable happens); ignored in sequential
    /// mode.
    pub pipeline_depth: usize,
    /// Feedback-driven overlap batch sizing (default on). The pipelined
    /// coordinator triggers a mid-step epoch swap once "enough" tuples
    /// are staged; with this flag set the swap point is chosen per step
    /// by a controller that tracks recent epoch-merge cost against the
    /// executing class's window, instead of the fixed
    /// `max(64, parallel_merge_threshold / 4)` fallback. Costs a few
    /// clock reads per step. Ignored when `pipeline_depth` is 0.
    pub adaptive_overlap: bool,
    /// Quiescent-point store compaction threshold: at the coordinator's
    /// maintain phase (right after lifetime hints run), a hinted table
    /// whose store reports more than this fraction of tombstoned slots
    /// is rebuilt, physically reclaiming the memory that `retain` only
    /// logically discarded. Values ≥ 1.0 disable compaction.
    pub compact_tombstones_above: f64,
    /// Write a checkpoint every this many steps (0 — the default —
    /// disables checkpointing). Requires [`EngineConfig::checkpoint_path`];
    /// see [`crate::persist`] for the policy guidance and on-disk
    /// format. Checkpoints are written atomically (temp + rename) from
    /// the coordinator's maintain phase at a fully quiescent point, so
    /// a crash between checkpoints loses at most `checkpoint_every`
    /// steps of work.
    pub checkpoint_every: u64,
    /// Directory receiving `ckpt-<seq>.jsnap` files (created on first
    /// checkpoint). `None` disables checkpointing regardless of
    /// [`EngineConfig::checkpoint_every`].
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Keep-last-N rotation: how many checkpoint files to retain
    /// (default 2 — the newest plus one fallback in case the newest is
    /// torn or corrupted). 0 is treated as 1.
    pub checkpoint_keep: usize,
    /// Minimum extracted-class size at which rules carrying a
    /// [`crate::rule::JoinPlan`] switch from per-tuple firing to
    /// **delta-join** execution: the class is grouped by its join-key
    /// values and Gamma is probed once per distinct key instead of once
    /// per tuple (semi-naive evaluation with the class as the delta).
    /// Below the threshold the batching bookkeeping costs more than the
    /// probes it saves. `usize::MAX` disables delta-join entirely;
    /// opaque (closure-body) rules always run per tuple regardless.
    /// Results are identical in both modes — set semantics and the Law
    /// of Causality make intra-class execution order unobservable.
    pub delta_join_threshold: usize,
    /// How delta-join classes probe Gamma — see [`JoinStrategy`]. The
    /// default is the leapfrog cursor walk; [`JoinStrategy::HashProbe`]
    /// keeps the PR 8 one-probe-per-distinct-key pass (the A/B knob the
    /// benches use). Emissions are identical under either strategy.
    pub join_strategy: JoinStrategy,
    /// Column-index caching policy for join walks — see
    /// [`IndexCachePolicy`]. Under the default (`OnDemand`) every built
    /// sorted column view is kept, stamped with its store's claim-journal
    /// generation, and caught up incrementally (sort the journal suffix,
    /// merge) instead of rebuilt from a full scan-and-sort;
    /// `EagerRefresh` additionally catches stale entries up on the
    /// pool's background lane at the maintain phase, hiding the work
    /// behind the execute window; `Off` restores the PR 9 per-walk
    /// throwaway build. Join *results* are identical under every policy
    /// — only where the sort cost lands changes.
    pub index_cache: IndexCachePolicy,
    /// Per-table byte bound on cached column views; least-recently-used
    /// entries are evicted past it (the most recently built view always
    /// survives). See [`EngineConfig::index_cache`].
    pub index_cache_max_bytes: usize,
}

/// The probe strategy of batched delta-join execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// One hash/indexed Gamma probe per distinct join key (PR 8).
    HashProbe,
    /// One coordinated sorted-merge walk per class: open a column
    /// cursor on each probe table once, then leapfrog the class's
    /// sorted key groups against it with seek/next motions. Fewer
    /// store probes on wide classes; identical emissions.
    Leapfrog,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            sequential: false,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            no_delta: Vec::new(),
            no_gamma: Vec::new(),
            stores: HashMap::new(),
            type_check: true,
            enforce_causality: true,
            record_steps: false,
            max_steps: None,
            pool: None,
            delta: DeltaKind::Tree,
            lifetime_hints: Vec::new(),
            hint_interval: 0,
            inline_class_threshold: 4,
            parallel_merge_threshold: 1024,
            pipeline_depth: 1,
            adaptive_overlap: true,
            compact_tombstones_above: 0.5,
            checkpoint_every: 0,
            checkpoint_path: None,
            checkpoint_keep: 2,
            delta_join_threshold: 32,
            join_strategy: JoinStrategy::Leapfrog,
            index_cache: IndexCachePolicy::default(),
            index_cache_max_bytes: DEFAULT_INDEX_CACHE_MAX_BYTES,
        }
    }
}

impl EngineConfig {
    /// Sequential configuration (the `-sequential` flag).
    pub fn sequential() -> Self {
        EngineConfig {
            sequential: true,
            threads: 1,
            ..Default::default()
        }
    }

    /// Parallel configuration with `n` fork/join threads.
    pub fn parallel(n: usize) -> Self {
        EngineConfig {
            sequential: false,
            threads: n.max(1),
            ..Default::default()
        }
    }

    /// Adds a `-noDelta` table.
    pub fn no_delta(mut self, t: TableId) -> Self {
        self.no_delta.push(t);
        self
    }

    /// Adds a `-noGamma` table.
    pub fn no_gamma(mut self, t: TableId) -> Self {
        self.no_gamma.push(t);
        self
    }

    /// Overrides the Gamma store for one table.
    pub fn store(mut self, t: TableId, kind: StoreKind) -> Self {
        self.stores.insert(t, kind);
        self
    }

    /// Enables the per-step parallelism log.
    pub fn record_steps(mut self) -> Self {
        self.record_steps = true;
        self
    }

    /// Sets the runaway-program step guard.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = Some(n);
        self
    }

    /// Selects the Delta structure (ablation knob).
    pub fn delta_kind(mut self, kind: DeltaKind) -> Self {
        self.delta = kind;
        self
    }

    /// Sets the maximum class width executed inline on the coordinator.
    /// 0 forks every multi-tuple class (the pre-adaptive behaviour).
    pub fn inline_classes_up_to(mut self, width: usize) -> Self {
        self.inline_class_threshold = width;
        self
    }

    /// Sets the staged-batch size at which the coordinator hands the
    /// Delta merge to pool workers. `usize::MAX` forces the sequential
    /// insert loop (the pre-partitioned behaviour); `0`/`1` parallelises
    /// every multi-partition batch.
    pub fn parallel_merge_from(mut self, batch: usize) -> Self {
        self.parallel_merge_threshold = batch;
        self
    }

    /// Sets the drain/execute pipelining depth: `0` for the strictly
    /// alternating loop, `1` (default) to overlap the Delta merge with
    /// class execution, `≥ 2` for the epoch ring plus the pre-extracted
    /// next class. Clamped to [`MAX_PIPELINE_DEPTH`]; the effective
    /// depth lands in [`super::RunReport::pipeline_depth`]. See
    /// [`EngineConfig::pipeline_depth`].
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Enables or disables the feedback-driven overlap controller (on
    /// by default); off restores the fixed
    /// `max(64, parallel_merge_threshold / 4)` swap trigger. See
    /// [`EngineConfig::adaptive_overlap`].
    pub fn adaptive_overlap(mut self, on: bool) -> Self {
        self.adaptive_overlap = on;
        self
    }

    /// Sets the tombstone fraction above which hinted tables are
    /// compacted at the maintain phase; pass a value ≥ 1.0 to disable.
    pub fn compact_tombstones_above(mut self, fraction: f64) -> Self {
        self.compact_tombstones_above = fraction;
        self
    }

    /// Enables periodic checkpointing: every `every` steps (0 disables)
    /// a snapshot is written atomically into `dir` as
    /// `ckpt-<seq>.jsnap`, keeping the newest
    /// [`EngineConfig::checkpoint_keep`] files. See [`crate::persist`]
    /// for interval guidance and [`super::Engine::restore_latest`] for
    /// recovery.
    pub fn checkpoint(mut self, dir: impl Into<std::path::PathBuf>, every: u64) -> Self {
        self.checkpoint_path = Some(dir.into());
        self.checkpoint_every = every;
        self
    }

    /// Sets the keep-last-N checkpoint rotation count (0 is treated
    /// as 1).
    pub fn checkpoint_keep(mut self, keep: usize) -> Self {
        self.checkpoint_keep = keep;
        self
    }

    /// Sets the class size at which join-plan rules switch to batched
    /// delta-join execution; `usize::MAX` forces per-tuple firing
    /// everywhere (the A/B knob the benches use). See
    /// [`EngineConfig::delta_join_threshold`].
    pub fn delta_join_from(mut self, class_size: usize) -> Self {
        self.delta_join_threshold = class_size;
        self
    }

    /// Selects the delta-join probe strategy (leapfrog cursor walk vs
    /// per-key hash probing). See [`JoinStrategy`].
    pub fn join_strategy(mut self, strategy: JoinStrategy) -> Self {
        self.join_strategy = strategy;
        self
    }

    /// Selects the column-index caching policy (off / on-demand /
    /// eager-refresh). See [`EngineConfig::index_cache`].
    pub fn index_cache(mut self, policy: IndexCachePolicy) -> Self {
        self.index_cache = policy;
        self
    }

    /// Sets the per-table byte bound for cached column views. See
    /// [`EngineConfig::index_cache_max_bytes`].
    pub fn index_cache_max_bytes(mut self, bytes: usize) -> Self {
        self.index_cache_max_bytes = bytes;
        self
    }

    /// Registers a tuple-lifetime hint for `table`: every `interval` steps,
    /// tuples the hook rejects are discarded from Gamma (§5 step 4 — the
    /// manual garbage-collection hints).
    pub fn lifetime_hint(
        mut self,
        table: TableId,
        interval: u64,
        keep: impl Fn(&Tuple) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.lifetime_hints.push((table, Arc::new(keep)));
        self.hint_interval = interval.max(1);
        self
    }
}
