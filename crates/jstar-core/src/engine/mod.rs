//! The execution engine — JStar's improved incremental pseudo-naive
//! bottom-up evaluator (§3, §5), structured as an explicit **phase
//! pipeline**.
//!
//! The tuple lifecycle (Fig. 3): a rule `put`s a tuple → it waits in the
//! Delta set → it is taken out "in an order that respects the causality
//! ordering", inserted into Gamma, and triggers applicable rules → later
//! rules may query it → (optionally) it is discarded via lifetime hints.
//!
//! Two modes mirror the paper's compiler flags:
//!
//! * **sequential** (`-sequential`): one thread, ordered stores;
//! * **parallel** (default): the *all-minimums strategy* — every tuple of
//!   the minimal Delta equivalence class is executed as a fork/join task on
//!   a [`jstar_pool::ThreadPool`] sized by `--threads=N`.
//!
//! Per-table optimisation flags are faithful to §5.1: `-noDelta T` sends
//! `T`'s tuples straight to Gamma and fires their rules immediately;
//! `-noGamma T` skips storing `T`'s tuples (they act as pure triggers).
//!
//! ## The lookahead step machine
//!
//! The step loop (the `coordinator` module) is a four-phase state
//! machine. [`EngineConfig::pipeline_depth`] selects how much of the
//! *next* step's work rides inside the current step's execute phase:
//! `0` is the strictly alternating loop, `1` (the default) overlaps the
//! Delta merge with rule execution, and `≥ 2` adds the epoch **ring**
//! and the **lookahead** — the next minimal class is extracted and
//! planned speculatively while the current one runs:
//!
//! ```text
//!            workers: put → ShardedInbox (epoch E+1, binned by key prefix)
//!                                │
//!   ┌──── ABSORB ────┐   ┌─── EXTRACT ───┐   ┌─────────── EXECUTE ───────────┐
//!   │ graft ring     │ → │ commit looka- │ → │ class chunks on the pool      │
//!   │ epochs in      │   │ head hit, or  │   │  ∥ prepare: pop next class,   │
//!   │ order, then    │   │ pop_min_class │   │    build its plan (depth ≥ 2) │
//!   │ the remainder  │   └───────────────┘   │  ∥ overlap: close epochs into │
//!   └────────────────┘                       │    the ring (≤ depth), builds │
//!            ▲                               │    on the background lane,    │
//!            │                               │    graft the completed ones — │
//!            │                               │    each graft validates the   │
//!            │                               │    prepared class and rolls   │
//!            │                               │    it back if preempted       │
//!            │                               └───────────────────────────────┘
//!            │                ┌── MAINTAIN ──┐                 │
//!            └────────────────│ hints,       │◀────────────────┘
//!                             │ compaction   │
//!                             └──────────────┘
//! ```
//!
//! * **Absorb** (`pipeline::Pipeline::absorb`) — the coordinator grafts
//!   every epoch still in the ring (oldest first), then swaps the
//!   staged remainder out of the [`crate::delta::ShardedInbox`] and
//!   merges it. With pipelining on, most of this already happened
//!   during the previous execute phase and only a small remainder is
//!   left here.
//! * **Extract** — the unit of parallelism of the all-minimums
//!   strategy. A speculation that survived every merge since it was
//!   prepared ([`crate::delta::PreparedClass`]) **is** the minimal
//!   class, with its plan already built: the fan-out launches
//!   immediately and [`RunReport::lookahead_hits`] counts one.
//!   Otherwise `pop_min_class` pays the extraction here. The extract
//!   must reflect *every* tuple staged by earlier steps (a staged key
//!   may order before the current minimum) — which is why absorb
//!   completes first, and why every absorbed epoch is checked against
//!   the prepared key.
//! * **Execute** (`schedule::Scheduler` decides the shape) — classes
//!   at or below [`EngineConfig::inline_class_threshold`] run inline on
//!   the coordinator; wider classes are chunked by measured width and
//!   pool occupancy and submitted as one batch
//!   ([`jstar_pool::Scope::spawn_batch`], a single wakeup). While a
//!   forked class runs, the pipelined coordinator loops
//!   (`pipeline::Pipeline::overlap`):
//!   1. **prepare** (depth ≥ 2, `schedule::Lookahead`) — extract the
//!      next minimal class and build its `ClassPlan` speculatively
//!      (chunked for the idle pool the launch will actually see);
//!   2. **close** — once the controller's swap point of staged tuples
//!      accumulates, swap the epoch out
//!      ([`crate::delta::ShardedInbox::swap_epoch`]) into the ring (at
//!      most `pipeline_depth` in flight), its per-partition subtree
//!      builds submitted on the pool's **background lane**
//!      ([`jstar_pool::submit_background`]) so only otherwise-idle
//!      workers build subtrees — class chunks always preempt them;
//!   3. **invalidate/commit** — graft completed epochs in order; an
//!      epoch whose minimal key orders at or below the prepared class
//!      returns the speculation to the queue (canonical-set semantics
//!      collapse any duplicates — [`RunReport::lookahead_misses`]
//!      counts one) and the lookahead re-prepares from the updated
//!      queue; an epoch ordering strictly after leaves it standing,
//!      to be committed at the next extract.
//!
//!   Since the Delta structures are canonical sets keyed by position,
//!   early-merged epochs and rolled-back speculations reproduce exactly
//!   the state the step-boundary drain would have: the pop sequence —
//!   and therefore the run — is bit-identical at every depth
//!   (property-tested across depths 0/1/2/4 in
//!   `tests/prop_engine.rs::lookahead_matches_alternating`).
//! * **Maintain** — the coordinator's single-threaded quiescent point:
//!   tuple-lifetime hints run (§5 step 4), stores whose tombstone
//!   fraction exceeds [`EngineConfig::compact_tombstones_above`] are
//!   compacted ([`crate::gamma::TableStore::maybe_compact`]), and —
//!   every [`EngineConfig::checkpoint_every`] steps — a checkpoint is
//!   written atomically (the Delta queue is forced fully current
//!   first; see [`crate::persist`] and [`Engine::restore_latest`]).
//!
//! The mid-step swap point is chosen per step by a feedback controller
//! ([`EngineConfig::adaptive_overlap`], default on): it tracks recent
//! epoch-absorb cost per staged tuple against the execute-window
//! length and sizes batches so one absorb costs about a quarter of the
//! window — falling back to the fixed
//! `max(64, parallel_merge_threshold / 4)` trigger when disabled or
//! before measurements exist.
//!
//! **Reading the metrics.** Time spent on overlapped drain work is
//! accounted separately ([`RunReport::overlap_time`],
//! [`RunReport::overlap_fraction`]): it is hidden under the execute
//! phase's wall clock instead of stalling the coordinator, so a rising
//! overlap fraction means the pipeline is doing its job.
//! [`RunReport::lookahead_hit_rate`] is the fraction of speculations
//! that survived to launch; a persistently low rate (common on
//! priority-queue workloads like Dijkstra, whose merges routinely
//! order below the next class) means the speculation is churn — the
//! lookahead pauses itself after a miss streak and re-probes
//! periodically, but such workloads still do best at
//! `pipeline_depth = 1`. Set `pipeline_depth = 0`
//! when diagnosing the engine (strictly alternating phases are easier
//! to reason about in a profile) or as the baseline arm of an A/B
//! measurement; the effective (clamped) depth of a run is reported in
//! [`RunReport::pipeline_depth`].
//!
//! ## Execution modes: per-tuple vs batched delta-join
//!
//! The execute phase chooses **how a class meets Gamma**, per class:
//!
//! * **Per-tuple** (the default, always correct): every fresh tuple of
//!   the class fires every rule on its table; a rule that joins its
//!   trigger against a Gamma table pays one indexed probe per tuple.
//! * **Delta-join** (`runtime::process_class_delta_join`): when every
//!   rule triggered by the class's table carries an inspectable
//!   [`crate::rule::JoinPlan`] — registered through
//!   `ProgramBuilder::rule_rel_join`, which records which trigger
//!   fields equate to which probe-table fields — and the class has at
//!   least [`EngineConfig::delta_join_threshold`] tuples, the whole
//!   class is treated as the semi-naive *delta*: fresh tuples are
//!   grouped by their join-key values in one deterministic pass, Gamma
//!   is probed **once per distinct key**, and each match is filtered
//!   and emitted against every group member. Distinct-key groups fan
//!   out across the pool like class chunks do. Rules without plans in
//!   an otherwise-eligible class still run per-tuple after the batched
//!   rules.
//!
//! The static half of the choice (does every rule on this table have a
//! plan?) is computed once per run; the dynamic half (is this class
//! wide enough, and single-table?) is `schedule::Scheduler::delta_join`.
//! Mode selection is invisible in results: both modes insert the class
//! into Gamma before firing and emit through the same staging path, so
//! by set semantics the staged tuple set — and therefore the pop
//! schedule — is bit-identical (property-tested in
//! `tests/prop_engine.rs::delta_join_matches_per_tuple`).
//! [`RunReport::delta_join_classes`], [`RunReport::delta_join_probes`],
//! [`RunReport::delta_join_build_tuples`] and
//! [`RunReport::gamma_probes`] put the probe-count reduction on record;
//! `bench_hotpath`'s `delta_join` section A/B-measures it and gates
//! that the mode costs nothing on join-free programs.
//!
//! ## The index-cache lifecycle
//!
//! Leapfrog join walks open sorted per-column views
//! ([`crate::gamma::TableStore::open_cursor`]); iterative programs
//! reopen the same columns step after step over largely-unchanged
//! tables. [`EngineConfig::index_cache`] keeps each built view in a
//! per-table cache ([`crate::gamma::IndexCache`]) stamped with the
//! store's claim-journal **generation**: a warm open sorts only the
//! journal suffix appended since the stamp and two-way merges it into
//! the cached groups, so its cost tracks the *new* tuples per step
//! instead of the live table. Lifetime-hint `retain`s (a changed
//! tombstone count) and quiescent rebuilds — compaction, snapshot
//! import, both of which bump the store's epoch — invalidate wholesale;
//! both happen only in the maintain phase, which is also where
//! `EagerRefresh` submits background-lane catch-up jobs (joined at the
//! top of the next maintain phase, before any retain or compact, so
//! refresh never races a table replacement). Policy choice:
//! `OnDemand` (the default) is right for almost everything — pure wins,
//! catch-up cost on the opening walk; `EagerRefresh` moves that cost
//! behind the execute window when join-heavy steps dominate and idle
//! workers exist; `Off` is the A/B baseline and the fallback for
//! memory-constrained runs (though the per-table LRU bound
//! [`EngineConfig::index_cache_max_bytes`] usually suffices).
//! [`RunReport::index_cache_hits`]/[`RunReport::index_cache_misses`]/
//! [`RunReport::index_catchup_tuples`]/[`RunReport::index_build_tuples`]
//! put the rebuild-work reduction on record, and every policy is
//! property-tested to produce bit-identical pop schedules
//! (`tests/prop_engine.rs::cached_index_matches_cold_build`).
//!
//! ## Hot-path architecture
//!
//! The put→Delta→Gamma pipeline adds **zero coordinator-side contention**
//! per tuple:
//!
//! 1. **Partition-aware sharded staging** — a worker `put` appends
//!    `(OrderKey, Tuple)` to its own [`crate::delta::ShardedInbox`]
//!    shard (routed by the pool's stable
//!    [`jstar_pool::ThreadPool::current_worker_index`]), binned by a
//!    hash of the key's leading components at push time.
//! 2. **Partitioned, overlapped parallel drain** — pool workers build
//!    one independent subtree per key-prefix partition; the coordinator
//!    grafts them, splicing disjoint subtrees wholesale. Under
//!    pipelining the builds run on the background lane during the
//!    previous class's execution.
//! 3. **Reservation-based Gamma inserts** — the parallel store defaults
//!    ([`crate::gamma::ConcurrentOrderedStore`],
//!    [`crate::gamma::HashStore`]) publish tuples via CAS slot
//!    reservation; no lock remains on the tuple hot path, and readers
//!    never observe partial state.
//! 4. **Borrowed trigger keys** — `process_tuple` and [`RuleCtx`] borrow
//!    the equivalence class's `OrderKey`; triggering a rule clones
//!    nothing.
//! 5. **Per-table query plans and bind-slot prepared queries** — orderby
//!    extraction and index selection are cached once per table in a
//!    [`QueryPlan`]; per-invocation constraint values patch interned
//!    queries in place ([`RuleCtx::for_each_bound`] /
//!    [`RuleCtx::for_each_with`]).
//! 6. **Adaptive all-minimums scheduling** — see the `schedule` module.
//!
//! The module family: `config` (the paper's flags), `runtime` (the
//! shared put/trigger core), `ctx` (the rule window onto the
//! database), `schedule` (class execution planning and the lookahead),
//! `pipeline` (the epoch ring and overlap controller), `report` (run
//! results), and `coordinator` (the step loop itself). The public API
//! — [`Engine`], [`EngineConfig`], [`RuleCtx`], [`RunReport`],
//! [`QueryPlan`], [`LifetimeHint`] — is re-exported here unchanged
//! from its single-file predecessor.

mod config;
mod coordinator;
mod ctx;
mod pipeline;
mod report;
mod runtime;
mod schedule;
#[cfg(test)]
mod tests;

pub use config::{EngineConfig, JoinStrategy, LifetimeHint, MAX_PIPELINE_DEPTH};
pub use coordinator::{Engine, RestoreOutcome};
pub use ctx::RuleCtx;
pub use report::RunReport;
pub use runtime::QueryPlan;
