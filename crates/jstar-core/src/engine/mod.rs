//! The execution engine — JStar's improved incremental pseudo-naive
//! bottom-up evaluator (§3, §5), structured as an explicit **phase
//! pipeline**.
//!
//! The tuple lifecycle (Fig. 3): a rule `put`s a tuple → it waits in the
//! Delta set → it is taken out "in an order that respects the causality
//! ordering", inserted into Gamma, and triggers applicable rules → later
//! rules may query it → (optionally) it is discarded via lifetime hints.
//!
//! Two modes mirror the paper's compiler flags:
//!
//! * **sequential** (`-sequential`): one thread, ordered stores;
//! * **parallel** (default): the *all-minimums strategy* — every tuple of
//!   the minimal Delta equivalence class is executed as a fork/join task on
//!   a [`jstar_pool::ThreadPool`] sized by `--threads=N`.
//!
//! Per-table optimisation flags are faithful to §5.1: `-noDelta T` sends
//! `T`'s tuples straight to Gamma and fires their rules immediately;
//! `-noGamma T` skips storing `T`'s tuples (they act as pure triggers).
//!
//! ## The phase pipeline
//!
//! The step loop (the `coordinator` module) is a four-phase state
//! machine; with [`EngineConfig::pipeline_depth`] ≥ 1 (the default) the
//! absorb phase additionally runs *inside* the execute phase, so the
//! Delta merge overlaps rule execution instead of alternating with it:
//!
//! ```text
//!            workers: put → ShardedInbox (epoch E+1, binned by key prefix)
//!                                │
//!   ┌──── ABSORB ────┐   ┌── EXTRACT ──┐   ┌─────────── EXECUTE ───────────┐
//!   │ swap epoch,    │ → │ pop_min     │ → │ class chunks on the pool      │
//!   │ merge runs     │   │ class       │   │   ∥ overlap: coordinator      │
//!   │ (serial rest)  │   └─────────────┘   │     swaps epochs + merges     │
//!   └────────────────┘                     │     subtrees (background lane)│
//!            ▲                             └───────────────────────────────┘
//!            │                ┌── MAINTAIN ──┐                 │
//!            └────────────────│ hints,       │◀────────────────┘
//!                             │ compaction   │
//!                             └──────────────┘
//! ```
//!
//! * **Absorb** (`pipeline::Pipeline::absorb`) — the coordinator swaps
//!   the staging epoch out of the [`crate::delta::ShardedInbox`] and
//!   merges the per-partition runs into the Delta queue
//!   ([`crate::delta::DeltaTree::merge_partitioned`]). With pipelining
//!   on, most of this already happened during the previous execute
//!   phase and only a small remainder is left here.
//! * **Extract** — `pop_min_class` removes the minimal equivalence
//!   class: the unit of parallelism of the all-minimums strategy. The
//!   pop must see *every* tuple staged by earlier steps (a staged key
//!   may order before the current tree minimum), which is why absorb
//!   always completes before extract — the pipeline overlaps the merge
//!   with the *previous* step's execution, never with the pop itself.
//! * **Execute** (`schedule::Scheduler` decides the shape) — classes
//!   at or below [`EngineConfig::inline_class_threshold`] run inline on
//!   the coordinator; wider classes are chunked by measured width and
//!   pool occupancy and submitted as one batch
//!   ([`jstar_pool::Scope::spawn_batch`], a single wakeup). While a
//!   forked class runs, the pipelined coordinator loops
//!   (`pipeline::Pipeline::overlap`): it closes staging epochs early
//!   ([`crate::delta::ShardedInbox::swap_epoch`]) and merges them with
//!   the per-partition subtree builds on the pool's **background lane**
//!   ([`jstar_pool::Scope::spawn_background_batch`]) so only
//!   otherwise-idle workers build subtrees — class chunks always
//!   preempt them. Since the Delta structures are canonical sets keyed
//!   by position, early-merged epochs graft in exactly the state the
//!   step-boundary drain would have produced: the pop sequence — and
//!   therefore the run — is bit-identical to `pipeline_depth = 0`
//!   (property-tested in `tests/prop_engine.rs`).
//! * **Maintain** — the coordinator's single-threaded quiescent point:
//!   tuple-lifetime hints run (§5 step 4), and stores whose tombstone
//!   fraction exceeds [`EngineConfig::compact_tombstones_above`] are
//!   compacted ([`crate::gamma::TableStore::maybe_compact`]).
//!
//! Time spent on overlapped drain work is accounted separately
//! ([`RunReport::overlap_time`], [`RunReport::overlap_fraction`]): it is
//! hidden under the execute phase's wall clock instead of stalling the
//! coordinator, so a rising overlap fraction means the pipeline is
//! doing its job.
//!
//! ## Hot-path architecture
//!
//! The put→Delta→Gamma pipeline adds **zero coordinator-side contention**
//! per tuple:
//!
//! 1. **Partition-aware sharded staging** — a worker `put` appends
//!    `(OrderKey, Tuple)` to its own [`crate::delta::ShardedInbox`]
//!    shard (routed by the pool's stable
//!    [`jstar_pool::ThreadPool::current_worker_index`]), binned by a
//!    hash of the key's leading components at push time.
//! 2. **Partitioned, overlapped parallel drain** — pool workers build
//!    one independent subtree per key-prefix partition; the coordinator
//!    grafts them, splicing disjoint subtrees wholesale. Under
//!    pipelining the builds run on the background lane during the
//!    previous class's execution.
//! 3. **Reservation-based Gamma inserts** — the parallel store defaults
//!    ([`crate::gamma::ConcurrentOrderedStore`],
//!    [`crate::gamma::HashStore`]) publish tuples via CAS slot
//!    reservation; no lock remains on the tuple hot path, and readers
//!    never observe partial state.
//! 4. **Borrowed trigger keys** — `process_tuple` and [`RuleCtx`] borrow
//!    the equivalence class's `OrderKey`; triggering a rule clones
//!    nothing.
//! 5. **Per-table query plans and bind-slot prepared queries** — orderby
//!    extraction and index selection are cached once per table in a
//!    [`QueryPlan`]; per-invocation constraint values patch interned
//!    queries in place ([`RuleCtx::for_each_bound`] /
//!    [`RuleCtx::for_each_with`]).
//! 6. **Adaptive all-minimums scheduling** — see the `schedule` module.
//!
//! The module family: `config` (the paper's flags), `runtime` (the
//! shared put/trigger core), `ctx` (the rule window onto the
//! database), `schedule` (class execution planning), `pipeline`
//! (epoch absorption), `report` (run results), and `coordinator`
//! (the step loop itself). The public API — [`Engine`],
//! [`EngineConfig`], [`RuleCtx`], [`RunReport`], [`QueryPlan`],
//! [`LifetimeHint`] — is re-exported here unchanged from its
//! single-file predecessor.

mod config;
mod coordinator;
mod ctx;
mod pipeline;
mod report;
mod runtime;
mod schedule;
#[cfg(test)]
mod tests;

pub use config::{EngineConfig, LifetimeHint};
pub use coordinator::Engine;
pub use ctx::RuleCtx;
pub use report::RunReport;
pub use runtime::QueryPlan;
