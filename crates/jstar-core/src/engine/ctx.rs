//! The context a rule body receives: its window onto the database.

use crate::error::JStarError;
use crate::orderby::OrderKey;
use crate::query::Query;
use crate::reduce::Reducer;
use crate::relation::{Binder, Field, PreparedQuery, Relation, TableHandle, TypedQuery};
use crate::schema::TableId;
use crate::tuple::Tuple;
use jstar_pool::ThreadPool;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use super::runtime::{put_tuple, RunState};

/// The context a rule body receives: its window onto the database.
///
/// All queries see only tuples already moved into Gamma — i.e. tuples that
/// are causally at-or-before the trigger — which is exactly why negative
/// and aggregate query results are stable (§4).
pub struct RuleCtx<'a> {
    state: &'a RunState,
    /// Borrowed from the executing equivalence class — constructing a
    /// context per triggered rule copies nothing.
    trigger_key: &'a OrderKey,
    rule: &'a str,
}

impl<'a> RuleCtx<'a> {
    pub(super) fn new(state: &'a RunState, trigger_key: &'a OrderKey, rule: &'a str) -> Self {
        RuleCtx {
            state,
            trigger_key,
            rule,
        }
    }

    /// The causal position of the trigger tuple.
    pub fn trigger_key(&self) -> &OrderKey {
        self.trigger_key
    }

    /// The name of the executing rule (diagnostics).
    pub fn rule_name(&self) -> &str {
        self.rule
    }

    /// Looks up a table id by name.
    pub fn table(&self, name: &str) -> TableId {
        self.state
            .program
            .table_id(name)
            .unwrap_or_else(|| panic!("unknown table {name}"))
    }

    /// Puts a new tuple into the database (§3). The tuple is placed in the
    /// Delta set (or sent straight to Gamma for `-noDelta` tables). The Law
    /// of Causality is enforced: the tuple's order key must not precede the
    /// trigger's.
    pub fn put(&self, t: Tuple) {
        put_tuple(self.state, self.trigger_key, self.rule, t);
    }

    /// Collects all Gamma tuples matching `q` (a positive query).
    pub fn query(&self, q: &Query) -> Vec<Tuple> {
        let Some(use_index) = self.count_query(q) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        self.state.gamma.query_hinted(q, use_index, &mut |t| {
            out.push(t.clone());
            true
        });
        out
    }

    /// Streams Gamma tuples matching `q`; return `false` to stop early.
    pub fn query_for_each(&self, q: &Query, mut f: impl FnMut(&Tuple) -> bool) {
        let Some(use_index) = self.count_query(q) else {
            return;
        };
        self.state.gamma.query_hinted(q, use_index, &mut f);
    }

    /// True if some tuple matches (positive existence).
    pub fn exists(&self, q: &Query) -> bool {
        let Some(use_index) = self.count_query(q) else {
            return false;
        };
        let mut found = false;
        self.state.gamma.query_hinted(q, use_index, &mut |_| {
            found = true;
            false
        });
        found
    }

    /// Negative query: true if *no* tuple matches — the paper's
    /// `get uniq? T(...) == null` pattern. Sound only when the queried
    /// region is causally before the trigger, which static checking
    /// verifies (§4).
    pub fn none(&self, q: &Query) -> bool {
        !self.exists(q)
    }

    /// Returns the unique match, if any (`get uniq?`).
    pub fn get_uniq(&self, q: &Query) -> Option<Tuple> {
        let use_index = self.count_query(q)?;
        let mut found = None;
        self.state.gamma.query_hinted(q, use_index, &mut |t| {
            found = Some(t.clone());
            false
        });
        found
    }

    /// Aggregate query: folds every match through `reducer`.
    pub fn reduce<R: Reducer>(&self, q: &Query, reducer: &R) -> R::Acc {
        let Some(use_index) = self.count_query(q) else {
            return reducer.identity();
        };
        if !self.check_reducer_field(q, reducer) {
            return reducer.identity();
        }
        let mut acc = reducer.identity();
        self.state.gamma.query_hinted(q, use_index, &mut |t| {
            reducer.accept(&mut acc, t);
            true
        });
        acc
    }

    /// `get min T(...)` over an integer field (§4's example rule uses
    /// `get min Tuple1(queryArgs)`).
    pub fn min_int(&self, q: &Query, field: usize) -> Option<i64> {
        self.reduce(q, &crate::reduce::MinIntReducer { field })
    }

    /// `get max T(...)` over an integer field.
    pub fn max_int(&self, q: &Query, field: usize) -> Option<i64> {
        self.reduce(q, &crate::reduce::MaxIntReducer { field })
    }

    /// Counts matching tuples.
    pub fn count(&self, q: &Query) -> u64 {
        self.reduce(q, &crate::reduce::CountReducer)
    }

    /// §5.2 "additional parallelism": runs `f` over every match of `q` in
    /// parallel on the engine pool. Sound because JStar rule loops "that
    /// do not use a reducer object \[are\] known to have independent loop
    /// bodies" — the language has no mutable variables. Falls back to
    /// sequential iteration in `-sequential` mode.
    pub fn par_for_each_match(&self, q: &Query, f: impl Fn(&Tuple) + Send + Sync) {
        let matches = self.query(q);
        match &self.state.pool {
            Some(pool) if matches.len() > 1 => {
                jstar_pool::parallel_chunks(pool, &matches, 0, |chunk, _| {
                    for t in chunk {
                        f(t);
                    }
                });
            }
            _ => {
                for t in &matches {
                    f(t);
                }
            }
        }
    }

    /// §5.2 "additional parallelism": aggregate query evaluated with a
    /// parallel tree reduction ("loops that do involve a reducer object
    /// could also be executed in parallel, with a tree-based pass to
    /// combine the final reducer results").
    pub fn reduce_parallel<R: Reducer>(&self, q: &Query, reducer: &R) -> R::Acc {
        if !self.check_reducer_field(q, reducer) {
            return reducer.identity();
        }
        match &self.state.pool {
            Some(pool) => {
                let matches = self.query(q);
                crate::reduce::reduce_par(pool, reducer, &matches)
            }
            None => self.reduce(q, reducer),
        }
    }

    /// Emits one line of program output. Output is collected per run; the
    /// paper notes tuple/output *order* is not part of the deterministic
    /// semantics, so tests compare output as multisets.
    pub fn println(&self, msg: impl Into<String>) {
        self.state.output.lock().push(msg.into());
    }

    /// Direct access to a table's Gamma store — the analog of the paper's
    /// `unsafe` code blocks used to implement system rules and custom
    /// native-array stores (Median's `double[2][N]`, MatrixMult's 2-D
    /// arrays). Downcast with [`crate::gamma::TableStore::as_any`].
    pub fn store(&self, table: TableId) -> &Arc<dyn crate::gamma::TableStore> {
        self.state.gamma.store(table)
    }

    /// The fork/join pool, when running in parallel mode — lets rule bodies
    /// parallelise their independent internal loops (§5.2 notes JStar loops
    /// are data-parallel because variables are immutable).
    pub fn pool(&self) -> Option<&Arc<ThreadPool>> {
        self.state.pool.as_ref()
    }

    /// Records an application-level error, aborting the run.
    pub fn fail(&self, msg: impl Into<String>) {
        self.state.record_error(JStarError::Other(msg.into()));
    }

    /// Counts the query, validates its field indexes against the table
    /// schema, and returns the table plan's index-selection decision —
    /// computed once here and passed down to the store, which no longer
    /// re-derives it per call. `None` means the query named a field the
    /// table does not have: the error is recorded (failing the run) and
    /// the query reports no matches instead of panicking in a store.
    fn count_query(&self, q: &Query) -> Option<bool> {
        let ti = q.table.index();
        if let Err(e) = q.validate(self.state.program.def(q.table)) {
            self.state.record_error(e);
            return None;
        }
        let stats = &self.state.stats.tables[ti];
        stats.queries.fetch_add(1, Ordering::Relaxed);
        let use_index = self.state.plans[ti].query_uses_index(q);
        if use_index {
            stats.queries_indexed.fetch_add(1, Ordering::Relaxed);
        }
        Some(use_index)
    }

    /// Validates a reducer's input field against the queried table's
    /// arity — the aggregate counterpart of the query-constraint check
    /// in [`RuleCtx::count_query`]. Records
    /// [`JStarError::NoSuchField`] and returns false when out of
    /// bounds, so the fold never reaches a store with a bad index.
    fn check_reducer_field<R: Reducer>(&self, q: &Query, reducer: &R) -> bool {
        match reducer.input_field() {
            Some(f) if f >= self.state.program.def(q.table).arity() => {
                self.state.record_error(JStarError::NoSuchField {
                    table: self.state.program.def(q.table).name.clone(),
                    field: format!("#{f}"),
                });
                false
            }
            _ => true,
        }
    }

    // ── Typed entry points ──────────────────────────────────────────
    //
    // The façade of [`crate::relation`]: the same operations as the
    // positional methods above, but relations in and out. Each method
    // resolves `R`'s table once (a linear scan over the program's
    // handful of registrations — cheaper than the per-call string
    // lookup `ctx.table("...")` the positional style encouraged) and
    // lowers the typed query by moving its vectors, so nothing below
    // this layer changes.

    /// The typed handle for relation `R` (panics if unregistered).
    pub fn rel<R: Relation>(&self) -> TableHandle<R> {
        self.state.program.handle::<R>()
    }

    /// Typed [`RuleCtx::put`]: encodes `row` and puts it.
    pub fn put_rel<R: Relation>(&self, row: R) {
        let id = self.rel::<R>().id();
        self.put(Tuple::new(id, row.into_values()));
    }

    /// Typed [`RuleCtx::query`]: collects and decodes every match.
    pub fn query_rel<R: Relation>(&self, q: TypedQuery<R>) -> Vec<R> {
        let q = q.lower(self.rel::<R>());
        let mut out = Vec::new();
        self.query_for_each(&q, |t| {
            out.push(R::from_tuple(t));
            true
        });
        out
    }

    /// Typed [`RuleCtx::query_for_each`]: streams decoded matches;
    /// return `false` to stop early.
    pub fn for_each_rel<R: Relation>(&self, q: TypedQuery<R>, mut f: impl FnMut(R) -> bool) {
        let q = q.lower(self.rel::<R>());
        self.query_for_each(&q, |t| f(R::from_tuple(t)));
    }

    /// Typed [`RuleCtx::exists`].
    pub fn exists_rel<R: Relation>(&self, q: TypedQuery<R>) -> bool {
        let q = q.lower(self.rel::<R>());
        self.exists(&q)
    }

    /// Typed [`RuleCtx::none`] — the `get uniq? R(...) == null` pattern.
    pub fn none_rel<R: Relation>(&self, q: TypedQuery<R>) -> bool {
        !self.exists_rel(q)
    }

    /// Typed [`RuleCtx::get_uniq`].
    pub fn get_uniq_rel<R: Relation>(&self, q: TypedQuery<R>) -> Option<R> {
        let q = q.lower(self.rel::<R>());
        self.get_uniq(&q).map(|t| R::from_tuple(&t))
    }

    /// Typed [`RuleCtx::reduce`]: aggregates without decoding rows —
    /// reducers address fields via [`Field::index`].
    pub fn reduce_rel<R: Relation, Red: Reducer>(
        &self,
        q: TypedQuery<R>,
        reducer: &Red,
    ) -> Red::Acc {
        let q = q.lower(self.rel::<R>());
        self.reduce(&q, reducer)
    }

    /// Typed [`RuleCtx::count`].
    pub fn count_rel<R: Relation>(&self, q: TypedQuery<R>) -> u64 {
        let q = q.lower(self.rel::<R>());
        self.count(&q)
    }

    /// Typed `get min` over an integer field.
    pub fn min_int_rel<R: Relation>(&self, q: TypedQuery<R>, field: Field<R, i64>) -> Option<i64> {
        let q = q.lower(self.rel::<R>());
        self.min_int(&q, field.index())
    }

    /// Typed `get max` over an integer field.
    pub fn max_int_rel<R: Relation>(&self, q: TypedQuery<R>, field: Field<R, i64>) -> Option<i64> {
        let q = q.lower(self.rel::<R>());
        self.max_int(&q, field.index())
    }

    /// Collects and decodes the matches of a [`PreparedQuery`] — the
    /// reuse point for constraint vectors interned once per rule.
    /// Panics on a query with bind slots (its placeholders would
    /// silently match nothing real — use [`RuleCtx::query_bound`]).
    pub fn query_prepared<R: Relation>(&self, q: &PreparedQuery<R>) -> Vec<R> {
        assert_eq!(
            q.slot_count(),
            0,
            "a prepared query with bind slots must be invoked through the *_bound entry points"
        );
        let mut out = Vec::new();
        self.query_for_each(q.as_query(), |t| {
            out.push(R::from_tuple(t));
            true
        });
        out
    }

    /// Aggregates over a [`PreparedQuery`] without decoding rows.
    /// Panics on a query with bind slots (use [`RuleCtx::reduce_bound`]).
    pub fn reduce_prepared<R: Relation, Red: Reducer>(
        &self,
        q: &PreparedQuery<R>,
        reducer: &Red,
    ) -> Red::Acc {
        assert_eq!(
            q.slot_count(),
            0,
            "a prepared query with bind slots must be invoked through the *_bound entry points"
        );
        self.reduce(q.as_query(), reducer)
    }

    // ── Bind-slot entry points ──────────────────────────────────────
    //
    // Invocations of a [`PreparedQuery`] built with `bind_*` slots:
    // `values` (in bind order) are patched into a per-thread cached
    // copy of the query — the rule's inner loop stops rebuilding its
    // eq/range vectors and stops allocating per call. See
    // [`crate::relation::TypedQuery::bind_eq`]. The `*_with` twins
    // below take a [`Binder`] instead of a positional value slice —
    // same machinery, but the values are named by `Field` token, so a
    // wrong-order (or wrong-typed) bind cannot compile.

    /// Bound [`RuleCtx::query_prepared`]: collects and decodes matches.
    pub fn query_bound<R: Relation>(
        &self,
        q: &PreparedQuery<R>,
        values: &[crate::value::Value],
    ) -> Vec<R> {
        q.with_bound(values, |q| {
            let mut out = Vec::new();
            self.query_for_each(q, |t| {
                out.push(R::from_tuple(t));
                true
            });
            out
        })
    }

    /// Bound streaming query; return `false` to stop early.
    pub fn for_each_bound<R: Relation>(
        &self,
        q: &PreparedQuery<R>,
        values: &[crate::value::Value],
        mut f: impl FnMut(R) -> bool,
    ) {
        q.with_bound(values, |q| {
            self.query_for_each(q, |t| f(R::from_tuple(t)));
        })
    }

    /// Bound positive existence test.
    pub fn exists_bound<R: Relation>(
        &self,
        q: &PreparedQuery<R>,
        values: &[crate::value::Value],
    ) -> bool {
        q.with_bound(values, |q| self.exists(q))
    }

    /// Bound negative query — the `get uniq? R(trigger.v) == null`
    /// pattern of the Dijkstra inner loop.
    pub fn none_bound<R: Relation>(
        &self,
        q: &PreparedQuery<R>,
        values: &[crate::value::Value],
    ) -> bool {
        !self.exists_bound(q, values)
    }

    /// Bound [`RuleCtx::get_uniq`].
    pub fn get_uniq_bound<R: Relation>(
        &self,
        q: &PreparedQuery<R>,
        values: &[crate::value::Value],
    ) -> Option<R> {
        q.with_bound(values, |q| self.get_uniq(q).map(|t| R::from_tuple(&t)))
    }

    /// Bound aggregate without decoding rows.
    pub fn reduce_bound<R: Relation, Red: Reducer>(
        &self,
        q: &PreparedQuery<R>,
        values: &[crate::value::Value],
        reducer: &Red,
    ) -> Red::Acc {
        q.with_bound(values, |q| self.reduce(q, reducer))
    }

    // ── Typed-binder entry points ───────────────────────────────────

    /// [`RuleCtx::query_bound`] with a typed [`Binder`]: collects and
    /// decodes matches of `b`'s query under `b`'s slot values.
    pub fn query_with<R: Relation>(&self, b: Binder<'_, R>) -> Vec<R> {
        b.apply(|q| {
            let mut out = Vec::new();
            self.query_for_each(q, |t| {
                out.push(R::from_tuple(t));
                true
            });
            out
        })
    }

    /// Typed-binder streaming query; return `false` to stop early.
    pub fn for_each_with<R: Relation>(&self, b: Binder<'_, R>, mut f: impl FnMut(R) -> bool) {
        b.apply(|q| {
            self.query_for_each(q, |t| f(R::from_tuple(t)));
        })
    }

    /// Typed-binder positive existence test.
    pub fn exists_with<R: Relation>(&self, b: Binder<'_, R>) -> bool {
        b.apply(|q| self.exists(q))
    }

    /// Typed-binder negative query — the Dijkstra inner loop's
    /// `get uniq? Done(edge.to) == null` shape:
    /// `ctx.none_with(done_probe.binder().set(Done::vertex, e.to))`.
    pub fn none_with<R: Relation>(&self, b: Binder<'_, R>) -> bool {
        !self.exists_with(b)
    }

    /// Typed-binder [`RuleCtx::get_uniq`].
    pub fn get_uniq_with<R: Relation>(&self, b: Binder<'_, R>) -> Option<R> {
        b.apply(|q| self.get_uniq(q).map(|t| R::from_tuple(&t)))
    }

    /// Typed-binder aggregate without decoding rows.
    pub fn reduce_with<R: Relation, Red: Reducer>(
        &self,
        b: Binder<'_, R>,
        reducer: &Red,
    ) -> Red::Acc {
        b.apply(|q| self.reduce(q, reducer))
    }
}
