//! Adaptive all-minimums scheduling: how one extracted equivalence
//! class is executed — and the **lookahead** over the next one.
//!
//! The paper's "simple all-minimums parallelisation strategy" makes
//! every tuple of the minimal class a fork/join task. That is the right
//! shape for wide classes and pure overhead for narrow ones, so the
//! scheduler plans each class adaptively:
//!
//! * **sequential engine** — everything runs inline on the coordinator,
//!   with the class sorted for a deterministic intra-class order
//!   (parallel execution order is intentionally unspecified, so only
//!   this arm pays for the sort);
//! * **narrow class** (at or below
//!   [`super::EngineConfig::inline_class_threshold`]) — inline on the
//!   coordinator: the fork/join round trip costs more than the work;
//! * **wide class** — chunked by measured class width and current pool
//!   occupancy ([`jstar_pool::adaptive_chunk`]) and submitted as one
//!   batch (single wakeup). A forked class is also the pipeline's
//!   overlap window: while its chunks run, the coordinator absorbs
//!   staged epochs (see [`super::pipeline`]).
//!
//! With [`super::EngineConfig::pipeline_depth`] ≥ 2 the coordinator
//! additionally runs the [`Lookahead`] inside that window: the *next*
//! minimal class is extracted from the Delta queue and planned
//! speculatively ([`Scheduler::plan_speculative`] — chunked for the
//! idle pool the fan-out will actually see at launch). The plan is
//! carried all the way to execution shape ([`PreparedExec`]): the
//! delta-join gate is decided and a forked class's tuples are
//! **pre-sliced into chunk jobs** during the window, so a committed
//! speculation submits its batch with zero extraction, planning, or
//! chunking work at the step boundary. Every epoch merged meanwhile is
//! validated against the prepared key; a merge ordering at or below it
//! rolls the speculation back — the pieces are reassembled in order
//! and returned to the queue (see [`crate::delta::PreparedClass`]) —
//! which keeps the pop schedule bit-identical to the non-speculating
//! engine.

use crate::delta::{DeltaQueue, PreparedClass};
use crate::orderby::OrderKey;
use crate::stats::EngineStats;
use crate::tuple::Tuple;
use jstar_pool::ThreadPool;
use std::sync::atomic::Ordering;

/// How one equivalence class should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum ClassPlan {
    /// Run on the coordinator thread; `sort` requests the deterministic
    /// intra-class order of the sequential engine.
    Inline { sort: bool },
    /// Chunk the class by `chunk` tuples and fan the chunks out to the
    /// pool as one batch.
    Forked { chunk: usize },
}

/// The per-run scheduling policy (all-minimums, made adaptive).
pub(super) struct Scheduler {
    /// Classes at or below this width run inline (see
    /// [`super::EngineConfig::inline_class_threshold`]).
    inline_threshold: usize,
    /// Minimum class size for batched delta-join execution (see
    /// [`super::EngineConfig::delta_join_threshold`]); `usize::MAX`
    /// until [`Scheduler::with_delta_join`] arms it.
    delta_join_threshold: usize,
    /// Per-table flag: does any rule triggered by this table carry a
    /// [`crate::rule::JoinPlan`]? Tables without one never take the
    /// delta-join arm, whatever the class size.
    join_tables: Vec<bool>,
}

impl Scheduler {
    pub(super) fn new(inline_threshold: usize) -> Scheduler {
        Scheduler {
            inline_threshold: inline_threshold.max(1),
            delta_join_threshold: usize::MAX,
            join_tables: Vec::new(),
        }
    }

    /// Arms delta-join mode: classes of at least `threshold` tuples
    /// whose (uniform) trigger table has a join-plan rule execute as
    /// one batched Gamma pass.
    pub(super) fn with_delta_join(mut self, threshold: usize, join_tables: Vec<bool>) -> Scheduler {
        self.delta_join_threshold = threshold;
        self.join_tables = join_tables;
        self
    }

    /// True when `class` should execute in batched delta-join mode:
    /// it clears the threshold, is uniform over one table, and that
    /// table triggers at least one join-plan rule. Mixed-table classes
    /// (one order key spanning tables) always take the per-tuple path —
    /// correctness never depends on this answer, only probe counts.
    pub(super) fn delta_join(&self, class: &[Tuple]) -> bool {
        let Some(first) = class.first() else {
            return false;
        };
        class.len() >= self.delta_join_threshold
            && self
                .join_tables
                .get(first.table().index())
                .copied()
                .unwrap_or(false)
            && class.iter().all(|t| t.table() == first.table())
    }

    /// Plans the execution of a class of `class_size` tuples.
    pub(super) fn plan(&self, pool: Option<&ThreadPool>, class_size: usize) -> ClassPlan {
        match pool {
            Some(pool) if class_size > self.inline_threshold => ClassPlan::Forked {
                chunk: jstar_pool::adaptive_chunk(pool, class_size),
            },
            Some(_) => ClassPlan::Inline { sort: false },
            None => ClassPlan::Inline { sort: true },
        }
    }

    /// Plans a class **speculatively**, for a fan-out that will launch
    /// at the *next* step boundary. Differs from [`Scheduler::plan`]
    /// only in the chunking input: the pool is busy *now* (the current
    /// class is still executing), but by launch time its chunks will
    /// have drained — so the chunk size assumes the idle pool the
    /// fan-out will actually see, rather than reading the transient
    /// backlog.
    pub(super) fn plan_speculative(
        &self,
        pool: Option<&ThreadPool>,
        class_size: usize,
    ) -> ClassPlan {
        match pool {
            Some(pool) if class_size > self.inline_threshold => ClassPlan::Forked {
                chunk: jstar_pool::idle_chunk(pool.num_threads(), class_size),
            },
            Some(_) => ClassPlan::Inline { sort: false },
            None => ClassPlan::Inline { sort: true },
        }
    }
}

/// How an extracted class will execute, with the tuples staged in the
/// shape execution wants — the commit-side counterpart of
/// [`ClassPlan`]. For speculative classes the whole shape is built
/// inside the previous execute window; for fresh pops the coordinator
/// builds it at the step boundary from [`Scheduler::plan`].
#[derive(Debug)]
pub(super) enum PreparedExec {
    /// Batched delta-join pass over the whole class (the tuples stay in
    /// the class vector).
    DeltaJoin,
    /// Run on the coordinator; `sort` requests the sequential engine's
    /// deterministic intra-class order (the tuples stay in the class
    /// vector).
    Inline { sort: bool },
    /// Pre-sliced chunk jobs, ready to submit to the pool as one batch.
    /// The tuples live **here** (the class vector is empty); an
    /// invalidated speculation reassembles them in order before
    /// restoring the queue.
    Forked { pieces: Vec<Vec<Tuple>> },
}

impl PreparedExec {
    /// Tuples held in pre-sliced pieces (zero for the shapes that keep
    /// the class vector intact) — added to the class vector's length to
    /// recover the class width.
    pub(super) fn sliced_len(&self) -> usize {
        match self {
            PreparedExec::Forked { pieces } => pieces.iter().map(Vec::len).sum(),
            _ => 0,
        }
    }
}

/// Slices a class into owned chunk jobs of `chunk` tuples (the last
/// piece takes the remainder), preserving order — concatenating the
/// pieces reproduces the class exactly, which is what returns an
/// invalidated speculation to the queue. Splits from the tail so each
/// piece is one short pointer memcpy, not a quadratic shuffle.
pub(super) fn slice_pieces(mut tuples: Vec<Tuple>, chunk: usize) -> Vec<Vec<Tuple>> {
    let chunk = chunk.max(1);
    let mut pieces = Vec::with_capacity(tuples.len().div_ceil(chunk));
    while tuples.len() > chunk {
        let boundary = ((tuples.len() - 1) / chunk) * chunk;
        pieces.push(tuples.split_off(boundary));
    }
    if !tuples.is_empty() {
        pieces.push(tuples);
    }
    pieces.reverse();
    pieces
}

/// After this many consecutive misses the lookahead pauses: the
/// workload is invalidating every speculation (a priority-queue shape
/// whose merges keep ordering below the next class), so each prepare
/// is pure churn — one extra insert+extract of the class per step.
const MISS_STREAK_PAUSE: u32 = 4;
/// How many prepare opportunities a paused lookahead skips before
/// probing the workload again (a phase change — e.g. a program moving
/// from a relaxation stratum into a fan-out stratum — re-arms it).
const PAUSE_PREPARES: u32 = 16;

/// The speculative half of the lookahead step machine: the
/// pre-extracted next class and its pre-built plan, with the
/// hit/miss bookkeeping.
///
/// Lifecycle per step window: [`Lookahead::prepare`] extracts the
/// minimal class and plans it; each merged epoch is checked through
/// [`Lookahead::validate`], which rolls the speculation back (restoring
/// the tuples to the queue — a **miss**) when the epoch's minimum
/// orders at or below the prepared key; at the step boundary
/// [`Lookahead::take`] either commits the surviving speculation (a
/// **hit** — the next fan-out launches immediately) or reports `None`
/// and the coordinator pops normally.
///
/// A run of [`MISS_STREAK_PAUSE`] consecutive misses pauses the
/// speculation for the next [`PAUSE_PREPARES`] opportunities: on
/// workloads that invalidate every lookahead, pausing converts the
/// per-step churn into a periodic probe, which is what keeps deeper
/// pipeline depths at parity with depth 1 where speculation cannot pay
/// (the `depth_sweep` bench gate). Pausing only skips *preparing* —
/// it never affects what executes, so results stay bit-identical.
pub(super) struct Lookahead {
    /// False below `pipeline_depth` 2: every method is a no-op and the
    /// engine behaves exactly like the non-speculating pipeline.
    enabled: bool,
    prepared: Option<(PreparedClass, PreparedExec)>,
    /// Consecutive misses since the last hit (or unpause).
    miss_streak: u32,
    /// Remaining prepare opportunities to skip while paused.
    paused_for: u32,
}

impl Lookahead {
    pub(super) fn new(enabled: bool) -> Lookahead {
        Lookahead {
            enabled,
            prepared: None,
            miss_streak: 0,
            paused_for: 0,
        }
    }

    /// Speculatively extracts the next minimal class and builds its
    /// full execution shape, if none is already prepared (and the
    /// lookahead is not pausing after a miss streak): the delta-join
    /// gate is decided here, and a forked class's tuples are pre-sliced
    /// into chunk jobs — all inside the execute window, so committing
    /// the speculation costs the step boundary nothing. Called right
    /// after the current class's chunks are spawned, and again after
    /// every absorbed epoch, so an invalidated speculation is
    /// immediately rebuilt from the updated queue.
    pub(super) fn prepare(
        &mut self,
        tree: &mut DeltaQueue,
        scheduler: &Scheduler,
        pool: Option<&ThreadPool>,
        epoch_mark: u64,
    ) {
        if !self.enabled || self.prepared.is_some() {
            return;
        }
        if self.paused_for > 0 {
            self.paused_for -= 1;
            if self.paused_for > 0 {
                return;
            }
            // Pause over: probe the workload again with a fresh streak.
            self.miss_streak = 0;
        }
        if let Some(mut prepared) = tree.prepare_min_class(epoch_mark) {
            let exec = if scheduler.delta_join(&prepared.tuples) {
                PreparedExec::DeltaJoin
            } else {
                match scheduler.plan_speculative(pool, prepared.tuples.len()) {
                    ClassPlan::Inline { sort } => PreparedExec::Inline { sort },
                    ClassPlan::Forked { chunk } => PreparedExec::Forked {
                        pieces: slice_pieces(std::mem::take(&mut prepared.tuples), chunk),
                    },
                }
            };
            self.prepared = Some((prepared, exec));
        }
    }

    /// Checks a merged epoch (its sequence number and minimal staged
    /// key) against the speculation. An epoch ordering at or below the
    /// prepared class invalidates it: the tuples go back into the
    /// queue, where canonical-set semantics collapse any duplicates the
    /// merge introduced (their already-counted Delta inserts are
    /// unwound via `stats`), and a miss is recorded.
    pub(super) fn validate(
        &mut self,
        epoch_seq: u64,
        merged_min: Option<&OrderKey>,
        tree: &mut DeltaQueue,
        stats: &EngineStats,
    ) {
        let invalidated = match &self.prepared {
            Some((prepared, _)) => {
                // The epoch_mark contract: a speculation reflects every
                // epoch up to and including its mark, so only strictly
                // later epochs may reach this check.
                debug_assert!(
                    prepared.epoch_mark < epoch_seq,
                    "epoch {epoch_seq} validated against a speculation already marked {}",
                    prepared.epoch_mark
                );
                !prepared.survives(merged_min)
            }
            None => false,
        };
        if invalidated {
            // lint: allow(expect): `invalidated` is only true when prepared is Some.
            let (prepared, exec) = self.prepared.take().expect("checked above");
            restore(tree, stats, prepared, exec);
            stats.lookahead_misses.fetch_add(1, Ordering::Relaxed);
            self.miss_streak += 1;
            if self.miss_streak >= MISS_STREAK_PAUSE {
                self.paused_for = PAUSE_PREPARES;
            }
        }
    }

    /// Returns any prepared speculation to the queue **without**
    /// counting a miss — the checkpoint path. A snapshot must see the
    /// complete pending set, so the speculatively extracted class is
    /// put back (canonical-set semantics collapse duplicates, unwinding
    /// their counted Delta inserts exactly as [`Lookahead::validate`]
    /// does); the hit/miss bookkeeping is untouched because nothing was
    /// learned about the workload.
    pub(super) fn flush(&mut self, tree: &mut DeltaQueue, stats: &EngineStats) {
        if let Some((prepared, exec)) = self.prepared.take() {
            restore(tree, stats, prepared, exec);
        }
    }

    /// Commits the surviving speculation at the step boundary, counting
    /// a hit (which also clears any miss streak). `None` when nothing
    /// is prepared (lookahead disabled, pausing, no window opened, or
    /// the speculation was invalidated).
    pub(super) fn take(&mut self, stats: &EngineStats) -> Option<(PreparedClass, PreparedExec)> {
        let taken = self.prepared.take();
        if taken.is_some() {
            stats.lookahead_hits.fetch_add(1, Ordering::Relaxed);
            self.miss_streak = 0;
        }
        taken
    }
}

/// Returns a dead speculation's tuples to the queue. A pre-sliced
/// forked shape is reassembled in order first, so the restore (and the
/// subsequent pop) sees exactly the class that was extracted.
fn restore(
    tree: &mut DeltaQueue,
    stats: &EngineStats,
    mut prepared: PreparedClass,
    exec: PreparedExec,
) {
    if let PreparedExec::Forked { pieces } = exec {
        debug_assert!(
            prepared.tuples.is_empty(),
            "forked speculation keeps its tuples in the pieces"
        );
        prepared.tuples = pieces.into_iter().flatten().collect();
    }
    tree.restore_prepared(prepared, &mut |ti| {
        stats.tables[ti]
            .delta_inserts
            .fetch_sub(1, Ordering::Relaxed);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_engine_sorts_inline() {
        let s = Scheduler::new(4);
        assert_eq!(s.plan(None, 100), ClassPlan::Inline { sort: true });
        assert_eq!(s.plan(None, 1), ClassPlan::Inline { sort: true });
    }

    #[test]
    fn narrow_classes_run_inline_without_sorting() {
        let pool = ThreadPool::new(2);
        let s = Scheduler::new(4);
        for width in 1..=4 {
            assert_eq!(
                s.plan(Some(&pool), width),
                ClassPlan::Inline { sort: false }
            );
        }
    }

    #[test]
    fn wide_classes_fork_with_adaptive_chunks() {
        let pool = ThreadPool::new(2);
        let s = Scheduler::new(4);
        match s.plan(Some(&pool), 1000) {
            ClassPlan::Forked { chunk } => assert!(chunk >= 1),
            other => panic!("expected a forked plan, got {other:?}"),
        }
    }

    #[test]
    fn zero_threshold_forks_every_multi_tuple_class() {
        let pool = ThreadPool::new(2);
        let s = Scheduler::new(0); // clamped to 1
        assert_eq!(s.plan(Some(&pool), 1), ClassPlan::Inline { sort: false });
        assert!(matches!(s.plan(Some(&pool), 2), ClassPlan::Forked { .. }));
    }

    #[test]
    fn delta_join_requires_threshold_uniform_table_and_plan_rule() {
        use crate::schema::TableId;
        use crate::value::Value;
        let row = |ti: u32, v: i64| Tuple::new(TableId(ti), vec![Value::Int(v)]);
        // Table 0 has a join-plan rule, table 1 does not.
        let s = Scheduler::new(4).with_delta_join(3, vec![true, false]);
        let wide: Vec<Tuple> = (0..3).map(|v| row(0, v)).collect();
        assert!(s.delta_join(&wide));
        assert!(!s.delta_join(&wide[..2]), "below threshold");
        let other: Vec<Tuple> = (0..3).map(|v| row(1, v)).collect();
        assert!(!s.delta_join(&other), "no join-plan rule on that table");
        let mixed = vec![row(0, 0), row(0, 1), row(1, 2)];
        assert!(!s.delta_join(&mixed), "mixed-table classes stay per-tuple");
        assert!(!s.delta_join(&[]), "empty class");
        // Unarmed scheduler (usize::MAX threshold) never batches.
        assert!(!Scheduler::new(4).delta_join(&wide));
    }

    #[test]
    fn slice_pieces_respects_chunk_boundaries_and_reassembles() {
        use crate::schema::TableId;
        use crate::value::Value;
        let tuples: Vec<Tuple> = (0..10)
            .map(|v| Tuple::new(TableId(0), vec![Value::Int(v)]))
            .collect();
        let pieces = slice_pieces(tuples.clone(), 4);
        assert_eq!(
            pieces.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![4, 4, 2],
            "same boundaries as slice::chunks"
        );
        let reassembled: Vec<Tuple> = pieces.into_iter().flatten().collect();
        assert_eq!(reassembled, tuples, "order-preserving round trip");

        assert!(slice_pieces(Vec::new(), 4).is_empty());
        assert_eq!(slice_pieces(tuples.clone(), 100).len(), 1, "one wide piece");
        assert_eq!(slice_pieces(tuples, 0).len(), 10, "chunk clamps to 1");
    }

    #[test]
    fn prepared_exec_sliced_len_counts_only_pieces() {
        use crate::schema::TableId;
        use crate::value::Value;
        let t = |v| Tuple::new(TableId(0), vec![Value::Int(v)]);
        assert_eq!(PreparedExec::DeltaJoin.sliced_len(), 0);
        assert_eq!(PreparedExec::Inline { sort: true }.sliced_len(), 0);
        let forked = PreparedExec::Forked {
            pieces: vec![vec![t(0), t(1)], vec![t(2)]],
        };
        assert_eq!(forked.sliced_len(), 3);
    }
}
