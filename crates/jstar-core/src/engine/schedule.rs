//! Adaptive all-minimums scheduling: how one extracted equivalence
//! class is executed.
//!
//! The paper's "simple all-minimums parallelisation strategy" makes
//! every tuple of the minimal class a fork/join task. That is the right
//! shape for wide classes and pure overhead for narrow ones, so the
//! scheduler plans each class adaptively:
//!
//! * **sequential engine** — everything runs inline on the coordinator,
//!   with the class sorted for a deterministic intra-class order
//!   (parallel execution order is intentionally unspecified, so only
//!   this arm pays for the sort);
//! * **narrow class** (at or below
//!   [`super::EngineConfig::inline_class_threshold`]) — inline on the
//!   coordinator: the fork/join round trip costs more than the work;
//! * **wide class** — chunked by measured class width and current pool
//!   occupancy ([`jstar_pool::adaptive_chunk`]) and submitted as one
//!   batch (single wakeup). A forked class is also the pipeline's
//!   overlap window: while its chunks run, the coordinator absorbs
//!   staged epochs (see [`super::pipeline`]).

use jstar_pool::ThreadPool;

/// How one equivalence class should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum ClassPlan {
    /// Run on the coordinator thread; `sort` requests the deterministic
    /// intra-class order of the sequential engine.
    Inline { sort: bool },
    /// Chunk the class by `chunk` tuples and fan the chunks out to the
    /// pool as one batch.
    Forked { chunk: usize },
}

/// The per-run scheduling policy (all-minimums, made adaptive).
pub(super) struct Scheduler {
    /// Classes at or below this width run inline (see
    /// [`super::EngineConfig::inline_class_threshold`]).
    inline_threshold: usize,
}

impl Scheduler {
    pub(super) fn new(inline_threshold: usize) -> Scheduler {
        Scheduler {
            inline_threshold: inline_threshold.max(1),
        }
    }

    /// Plans the execution of a class of `class_size` tuples.
    pub(super) fn plan(&self, pool: Option<&ThreadPool>, class_size: usize) -> ClassPlan {
        match pool {
            Some(pool) if class_size > self.inline_threshold => ClassPlan::Forked {
                chunk: jstar_pool::adaptive_chunk(pool, class_size),
            },
            Some(_) => ClassPlan::Inline { sort: false },
            None => ClassPlan::Inline { sort: true },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_engine_sorts_inline() {
        let s = Scheduler::new(4);
        assert_eq!(s.plan(None, 100), ClassPlan::Inline { sort: true });
        assert_eq!(s.plan(None, 1), ClassPlan::Inline { sort: true });
    }

    #[test]
    fn narrow_classes_run_inline_without_sorting() {
        let pool = ThreadPool::new(2);
        let s = Scheduler::new(4);
        for width in 1..=4 {
            assert_eq!(
                s.plan(Some(&pool), width),
                ClassPlan::Inline { sort: false }
            );
        }
    }

    #[test]
    fn wide_classes_fork_with_adaptive_chunks() {
        let pool = ThreadPool::new(2);
        let s = Scheduler::new(4);
        match s.plan(Some(&pool), 1000) {
            ClassPlan::Forked { chunk } => assert!(chunk >= 1),
            other => panic!("expected a forked plan, got {other:?}"),
        }
    }

    #[test]
    fn zero_threshold_forks_every_multi_tuple_class() {
        let pool = ThreadPool::new(2);
        let s = Scheduler::new(0); // clamped to 1
        assert_eq!(s.plan(Some(&pool), 1), ClassPlan::Inline { sort: false });
        assert!(matches!(s.plan(Some(&pool), 2), ClassPlan::Forked { .. }));
    }
}
