//! The shared run-time core: per-table query plans, the state every
//! worker thread sees, and the put → Delta / Gamma → trigger path that
//! both the coordinator and the rule contexts drive.

use crate::delta::ShardedInbox;
use crate::error::JStarError;
use crate::gamma::{Gamma, InsertOutcome};
use crate::orderby::{OrderKey, ResolvedComponent, ResolvedOrderBy};
use crate::program::Program;
use crate::query::Query;
use crate::stats::EngineStats;
use crate::tuple::Tuple;
use jstar_pool::ThreadPool;
use parking_lot::Mutex;
use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use super::ctx::RuleCtx;

/// Per-table hot-path cache, computed once at engine construction.
///
/// Consolidates everything `put` and `query` would otherwise re-derive per
/// call: the resolved orderby key extractor, the interned key for tables
/// whose ordering is tuple-independent (pure-stratum orderbys — every
/// tuple of the table shares one Delta equivalence class), and the store's
/// index-selection data (`covers_fields` input).
pub struct QueryPlan {
    /// The table's resolved orderby list (the key extractor).
    orderby: ResolvedOrderBy,
    /// Interned order key when the orderby has no tuple-dependent
    /// component; such tables form a single delta class per run.
    const_key: Option<OrderKey>,
    /// Fields the table's Gamma store is hash-indexed on, if any.
    index_fields: Option<Box<[usize]>>,
}

impl QueryPlan {
    pub(super) fn new(
        orderby: &ResolvedOrderBy,
        store: &dyn crate::gamma::TableStore,
    ) -> QueryPlan {
        let tuple_independent = orderby
            .components
            .iter()
            .all(|c| !matches!(c, ResolvedComponent::Seq { .. }));
        let const_key = tuple_independent.then(|| {
            let mut parts = Vec::new();
            for c in &orderby.components {
                match c {
                    ResolvedComponent::Strat { rank, .. } => {
                        parts.push(crate::orderby::KeyPart::Strat(*rank))
                    }
                    ResolvedComponent::Seq { .. } => unreachable!("tuple-independent"),
                    ResolvedComponent::Par { .. } => break,
                }
            }
            OrderKey(parts)
        });
        QueryPlan {
            orderby: orderby.clone(),
            const_key,
            index_fields: store.index_fields().map(|f| f.to_vec().into_boxed_slice()),
        }
    }

    /// The order key of `t` — a clone of the interned key when the table's
    /// ordering is tuple-independent, a fresh extraction otherwise.
    #[inline]
    pub fn key_for(&self, t: &Tuple) -> OrderKey {
        match &self.const_key {
            Some(k) => k.clone(),
            None => self.orderby.key_of(t),
        }
    }

    /// True when `q` binds every indexed field of the table's store with an
    /// equality constraint — the cached index-selection decision.
    #[inline]
    pub fn query_uses_index(&self, q: &Query) -> bool {
        match &self.index_fields {
            Some(fields) => q.covers_fields(fields),
            None => false,
        }
    }
}

/// Shared run-time state, accessible from worker threads.
pub(crate) struct RunState {
    pub(super) program: Arc<Program>,
    pub(super) gamma: Gamma,
    pub(super) inbox: ShardedInbox,
    pub(super) plans: Vec<QueryPlan>,
    pub(super) no_delta: Vec<bool>,
    pub(super) no_gamma: Vec<bool>,
    pub(super) type_check: bool,
    pub(super) enforce_causality: bool,
    pub(super) output: Mutex<Vec<String>>,
    pub(super) errors: Mutex<Vec<JStarError>>,
    pub(super) stats: EngineStats,
    pub(super) pool: Option<Arc<ThreadPool>>,
}

impl RunState {
    pub(super) fn record_error(&self, e: JStarError) {
        self.errors.lock().push(e);
    }

    pub(super) fn has_errors(&self) -> bool {
        !self.errors.lock().is_empty()
    }

    /// The staging shard for the calling thread: the worker's stable index
    /// on pool threads, the external shard everywhere else.
    #[inline]
    pub(super) fn staging_shard(&self) -> usize {
        self.pool
            .as_ref()
            .and_then(|p| p.current_worker_index())
            .unwrap_or_else(|| self.inbox.external_shard())
    }
}

/// Core put path, shared by `RuleCtx::put`, initial puts and injected
/// event tuples. The trigger key is borrowed; the computed key for `t`
/// moves into the staging shard without further copies.
pub(super) fn put_tuple(state: &RunState, trigger_key: &OrderKey, rule: &str, t: Tuple) {
    let table = t.table();
    let ti = table.index();
    state.stats.tables[ti].puts.fetch_add(1, Ordering::Relaxed);

    if state.type_check {
        if let Err(msg) = state.program.def(table).type_check(t.fields()) {
            state.record_error(JStarError::Type(msg));
            return;
        }
    }

    let key = state.plans[ti].key_for(&t);
    if state.enforce_causality && trigger_key.cmp(&key) == CmpOrdering::Greater {
        state.record_error(JStarError::CausalityViolation {
            rule: rule.to_string(),
            trigger_key: trigger_key.clone(),
            put_key: key,
            tuple: t.to_string(),
        });
        return;
    }

    if state.no_delta[ti] {
        // §5.1: put straight into Gamma and fire triggered rules
        // immediately on this thread.
        process_tuple(state, &key, t);
    } else {
        state.inbox.push(state.staging_shard(), key, t);
    }
}

/// Moves one tuple out of the Delta set: inserts it into Gamma (unless
/// `-noGamma`), and if it is fresh, fires every rule it triggers. `key`
/// is borrowed from the executing class — rule contexts borrow it too,
/// so triggering N rules performs zero key clones.
pub(super) fn process_tuple(state: &RunState, key: &OrderKey, t: Tuple) {
    let table = t.table();
    let ti = table.index();
    let fresh = if state.no_gamma[ti] {
        true
    } else {
        match state.gamma.insert(t.clone()) {
            InsertOutcome::Fresh => {
                state.stats.tables[ti]
                    .gamma_fresh
                    .fetch_add(1, Ordering::Relaxed);
                true
            }
            InsertOutcome::Duplicate => {
                // Set-oriented semantics: duplicates neither re-trigger
                // rules nor re-enter Gamma (§6.2's SumMonth dedup).
                state.stats.tables[ti]
                    .gamma_dups
                    .fetch_add(1, Ordering::Relaxed);
                false
            }
            InsertOutcome::KeyConflict => {
                state.record_error(JStarError::KeyViolation {
                    table: state.program.def(table).name.clone(),
                    detail: format!("insert of {t} violates the -> key invariant"),
                });
                false
            }
        }
    };
    if !fresh {
        return;
    }
    state.stats.tables[ti].triggers.fetch_add(
        state.program.rules_by_trigger()[ti].len() as u64,
        Ordering::Relaxed,
    );
    fire_rules(state, key, &t);
}

/// Fires every rule triggered by `t` (which must be fresh). Contexts
/// borrow the class key — zero copies per trigger.
pub(super) fn fire_rules(state: &RunState, key: &OrderKey, t: &Tuple) {
    let ti = t.table().index();
    for &ri in &state.program.rules_by_trigger()[ti] {
        let rule = &state.program.rules()[ri];
        let ctx = RuleCtx::new(state, key, &rule.name);
        (rule.body)(&ctx, t);
    }
}

/// Executes one chunk of an equivalence class on a worker.
///
/// Uniform-table chunks (the overwhelmingly common case — a class is one
/// key, and most keys belong to one table) take the batch path: a single
/// [`Gamma::insert_batch`] call amortises store locking, statistics are
/// published once per chunk, and rules fire afterwards for the fresh
/// tuples. Mixed-table chunks fall back to the per-tuple path.
pub(super) fn process_class_chunk(state: &RunState, key: &OrderKey, chunk: &[Tuple]) {
    let table = chunk[0].table();
    let ti = table.index();
    let uniform =
        chunk.len() > 1 && !state.no_gamma[ti] && chunk.iter().all(|t| t.table() == table);
    if !uniform {
        for t in chunk {
            process_tuple(state, key, t.clone());
        }
        return;
    }

    let mut outcomes = Vec::with_capacity(chunk.len());
    state.gamma.insert_batch(table, chunk, &mut outcomes);
    let (mut fresh, mut dups) = (0u64, 0u64);
    for (t, outcome) in chunk.iter().zip(&outcomes) {
        match outcome {
            InsertOutcome::Fresh => fresh += 1,
            InsertOutcome::Duplicate => dups += 1,
            InsertOutcome::KeyConflict => {
                state.record_error(JStarError::KeyViolation {
                    table: state.program.def(table).name.clone(),
                    detail: format!("insert of {t} violates the -> key invariant"),
                });
            }
        }
    }
    let stats = &state.stats.tables[ti];
    if fresh > 0 {
        stats.gamma_fresh.fetch_add(fresh, Ordering::Relaxed);
        stats.triggers.fetch_add(
            fresh * state.program.rules_by_trigger()[ti].len() as u64,
            Ordering::Relaxed,
        );
    }
    if dups > 0 {
        stats.gamma_dups.fetch_add(dups, Ordering::Relaxed);
    }
    for (t, outcome) in chunk.iter().zip(&outcomes) {
        if matches!(outcome, InsertOutcome::Fresh) {
            fire_rules(state, key, t);
        }
    }
}
