//! The shared run-time core: per-table query plans, the state every
//! worker thread sees, and the put → Delta / Gamma → trigger path that
//! both the coordinator and the rule contexts drive.

use super::config::JoinStrategy;
use crate::delta::ShardedInbox;
use crate::error::JStarError;
use crate::gamma::{ColumnCursor, ColumnIndex, Gamma, InsertOutcome};
use crate::orderby::{OrderKey, ResolvedComponent, ResolvedOrderBy};
use crate::program::Program;
use crate::query::Query;
use crate::rule::{JoinPlan, Rule};
use crate::stats::EngineStats;
use crate::tuple::Tuple;
use crate::value::Value;
use jstar_pool::ThreadPool;
use parking_lot::Mutex;
use std::cmp::Ordering as CmpOrdering;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use super::ctx::RuleCtx;

/// Per-table hot-path cache, computed once at engine construction.
///
/// Consolidates everything `put` and `query` would otherwise re-derive per
/// call: the resolved orderby key extractor, the interned key for tables
/// whose ordering is tuple-independent (pure-stratum orderbys — every
/// tuple of the table shares one Delta equivalence class), and the store's
/// index-selection data (`covers_fields` input).
pub struct QueryPlan {
    /// The table's resolved orderby list (the key extractor).
    orderby: ResolvedOrderBy,
    /// Interned order key when the orderby has no tuple-dependent
    /// component; such tables form a single delta class per run.
    const_key: Option<OrderKey>,
    /// Fields the table's Gamma store is hash-indexed on, if any.
    index_fields: Option<Box<[usize]>>,
}

impl QueryPlan {
    pub(super) fn new(
        orderby: &ResolvedOrderBy,
        store: &dyn crate::gamma::TableStore,
    ) -> QueryPlan {
        let tuple_independent = orderby
            .components
            .iter()
            .all(|c| !matches!(c, ResolvedComponent::Seq { .. }));
        let const_key = tuple_independent.then(|| {
            let mut parts = Vec::new();
            for c in &orderby.components {
                match c {
                    ResolvedComponent::Strat { rank, .. } => {
                        parts.push(crate::orderby::KeyPart::Strat(*rank))
                    }
                    ResolvedComponent::Seq { .. } => unreachable!("tuple-independent"),
                    ResolvedComponent::Par { .. } => break,
                }
            }
            OrderKey(parts)
        });
        QueryPlan {
            orderby: orderby.clone(),
            const_key,
            index_fields: store.index_fields().map(|f| f.to_vec().into_boxed_slice()),
        }
    }

    /// The order key of `t` — a clone of the interned key when the table's
    /// ordering is tuple-independent, a fresh extraction otherwise.
    #[inline]
    pub fn key_for(&self, t: &Tuple) -> OrderKey {
        match &self.const_key {
            Some(k) => k.clone(),
            None => self.orderby.key_of(t),
        }
    }

    /// True when `q` binds every indexed field of the table's store with an
    /// equality constraint — the cached index-selection decision.
    #[inline]
    pub fn query_uses_index(&self, q: &Query) -> bool {
        match &self.index_fields {
            Some(fields) => q.covers_fields(fields),
            None => false,
        }
    }
}

/// Shared run-time state, accessible from worker threads.
pub(crate) struct RunState {
    pub(super) program: Arc<Program>,
    pub(super) gamma: Gamma,
    pub(super) inbox: ShardedInbox,
    pub(super) plans: Vec<QueryPlan>,
    pub(super) no_delta: Vec<bool>,
    pub(super) no_gamma: Vec<bool>,
    pub(super) type_check: bool,
    pub(super) enforce_causality: bool,
    pub(super) output: Mutex<Vec<String>>,
    pub(super) errors: Mutex<Vec<JStarError>>,
    pub(super) stats: EngineStats,
    pub(super) pool: Option<Arc<ThreadPool>>,
    pub(super) join_strategy: JoinStrategy,
}

impl RunState {
    pub(super) fn record_error(&self, e: JStarError) {
        self.errors.lock().push(e);
    }

    pub(super) fn has_errors(&self) -> bool {
        !self.errors.lock().is_empty()
    }

    /// The staging shard for the calling thread: the worker's stable index
    /// on pool threads, the external shard everywhere else.
    #[inline]
    pub(super) fn staging_shard(&self) -> usize {
        self.pool
            .as_ref()
            .and_then(|p| p.current_worker_index())
            .unwrap_or_else(|| self.inbox.external_shard())
    }
}

/// Core put path, shared by `RuleCtx::put`, initial puts and injected
/// event tuples. The trigger key is borrowed; the computed key for `t`
/// moves into the staging shard without further copies.
pub(super) fn put_tuple(state: &RunState, trigger_key: &OrderKey, rule: &str, t: Tuple) {
    let table = t.table();
    let ti = table.index();
    state.stats.tables[ti].puts.fetch_add(1, Ordering::Relaxed);

    if state.type_check {
        if let Err(msg) = state.program.def(table).type_check(t.fields()) {
            state.record_error(JStarError::Type(msg));
            return;
        }
    }

    let key = state.plans[ti].key_for(&t);
    if state.enforce_causality && trigger_key.cmp(&key) == CmpOrdering::Greater {
        state.record_error(JStarError::CausalityViolation {
            rule: rule.to_string(),
            trigger_key: trigger_key.clone(),
            put_key: key,
            tuple: t.to_string(),
        });
        return;
    }

    if state.no_delta[ti] {
        // §5.1: put straight into Gamma and fire triggered rules
        // immediately on this thread.
        process_tuple(state, &key, t);
    } else {
        state.inbox.push(state.staging_shard(), key, t);
    }
}

/// Moves one tuple out of the Delta set: inserts it into Gamma (unless
/// `-noGamma`), and if it is fresh, fires every rule it triggers. `key`
/// is borrowed from the executing class — rule contexts borrow it too,
/// so triggering N rules performs zero key clones.
pub(super) fn process_tuple(state: &RunState, key: &OrderKey, t: Tuple) {
    let table = t.table();
    let ti = table.index();
    let fresh = if state.no_gamma[ti] {
        true
    } else {
        match state.gamma.insert(t.clone()) {
            InsertOutcome::Fresh => {
                state.stats.tables[ti]
                    .gamma_fresh
                    .fetch_add(1, Ordering::Relaxed);
                true
            }
            InsertOutcome::Duplicate => {
                // Set-oriented semantics: duplicates neither re-trigger
                // rules nor re-enter Gamma (§6.2's SumMonth dedup).
                state.stats.tables[ti]
                    .gamma_dups
                    .fetch_add(1, Ordering::Relaxed);
                false
            }
            InsertOutcome::KeyConflict => {
                state.record_error(JStarError::KeyViolation {
                    table: state.program.def(table).name.clone(),
                    detail: format!("insert of {t} violates the -> key invariant"),
                });
                false
            }
        }
    };
    if !fresh {
        return;
    }
    state.stats.tables[ti].triggers.fetch_add(
        state.program.rules_by_trigger()[ti].len() as u64,
        Ordering::Relaxed,
    );
    fire_rules(state, key, &t);
}

/// Fires every rule triggered by `t` (which must be fresh). Contexts
/// borrow the class key — zero copies per trigger.
pub(super) fn fire_rules(state: &RunState, key: &OrderKey, t: &Tuple) {
    let ti = t.table().index();
    for &ri in &state.program.rules_by_trigger()[ti] {
        let rule = &state.program.rules()[ri];
        let ctx = RuleCtx::new(state, key, &rule.name);
        (rule.body)(&ctx, t);
    }
}

/// Executes one chunk of an equivalence class on a worker.
///
/// Uniform-table chunks (the overwhelmingly common case — a class is one
/// key, and most keys belong to one table) take the batch path: a single
/// [`Gamma::insert_batch`] call amortises store locking, statistics are
/// published once per chunk, and rules fire afterwards for the fresh
/// tuples. Mixed-table chunks fall back to the per-tuple path.
pub(super) fn process_class_chunk(state: &RunState, key: &OrderKey, chunk: &[Tuple]) {
    let table = chunk[0].table();
    let ti = table.index();
    let uniform =
        chunk.len() > 1 && !state.no_gamma[ti] && chunk.iter().all(|t| t.table() == table);
    if !uniform {
        for t in chunk {
            process_tuple(state, key, t.clone());
        }
        return;
    }

    let mut outcomes = Vec::with_capacity(chunk.len());
    state.gamma.insert_batch(table, chunk, &mut outcomes);
    let (mut fresh, mut dups) = (0u64, 0u64);
    for (t, outcome) in chunk.iter().zip(&outcomes) {
        match outcome {
            InsertOutcome::Fresh => fresh += 1,
            InsertOutcome::Duplicate => dups += 1,
            InsertOutcome::KeyConflict => {
                state.record_error(JStarError::KeyViolation {
                    table: state.program.def(table).name.clone(),
                    detail: format!("insert of {t} violates the -> key invariant"),
                });
            }
        }
    }
    let stats = &state.stats.tables[ti];
    if fresh > 0 {
        stats.gamma_fresh.fetch_add(fresh, Ordering::Relaxed);
        stats.triggers.fetch_add(
            fresh * state.program.rules_by_trigger()[ti].len() as u64,
            Ordering::Relaxed,
        );
    }
    if dups > 0 {
        stats.gamma_dups.fetch_add(dups, Ordering::Relaxed);
    }
    for (t, outcome) in chunk.iter().zip(&outcomes) {
        if matches!(outcome, InsertOutcome::Fresh) {
            fire_rules(state, key, t);
        }
    }
}

/// Executes a whole extracted class in **delta-join** mode — semi-naive
/// evaluation with the class as the delta.
///
/// Phase A inserts the class into Gamma in one batch and keeps the fresh
/// tuples (in class order). Phase B runs each triggered rule over the
/// fresh set: rules carrying a [`JoinPlan`] are executed as one batched
/// join — the fresh tuples are grouped by their join-key values and
/// Gamma is probed **once per distinct key** instead of once per tuple,
/// with the distinct-key groups fanned out across pool workers — while
/// opaque rules fall back to per-tuple firing over the same fresh set.
///
/// This is a valid serialization of the per-tuple schedule: parallel
/// per-tuple execution already inserts each chunk before firing its
/// rules and interleaves chunks arbitrarily, so intra-class visibility
/// is unspecified in both modes, and set semantics plus the Law of
/// Causality make the emitted tuple set identical (prop-tested
/// bit-identical downstream schedules).
pub(super) fn process_class_delta_join(
    state: &RunState,
    key: &OrderKey,
    class: &[Tuple],
    pool: Option<&ThreadPool>,
) {
    let table = class[0].table();
    let ti = table.index();
    let rules_here = &state.program.rules_by_trigger()[ti];

    // ── Phase A: whole-class Gamma insert, fresh tuples kept in class
    // order (the deterministic build side of the join).
    let mut fresh: Vec<&Tuple> = Vec::with_capacity(class.len());
    if state.no_gamma[ti] {
        fresh.extend(class.iter());
    } else {
        let mut outcomes = Vec::with_capacity(class.len());
        state.gamma.insert_batch(table, class, &mut outcomes);
        let (mut nf, mut nd) = (0u64, 0u64);
        for (t, outcome) in class.iter().zip(&outcomes) {
            match outcome {
                InsertOutcome::Fresh => {
                    nf += 1;
                    fresh.push(t);
                }
                InsertOutcome::Duplicate => nd += 1,
                InsertOutcome::KeyConflict => {
                    state.record_error(JStarError::KeyViolation {
                        table: state.program.def(table).name.clone(),
                        detail: format!("insert of {t} violates the -> key invariant"),
                    });
                }
            }
        }
        let stats = &state.stats.tables[ti];
        if nf > 0 {
            stats.gamma_fresh.fetch_add(nf, Ordering::Relaxed);
        }
        if nd > 0 {
            stats.gamma_dups.fetch_add(nd, Ordering::Relaxed);
        }
    }
    if fresh.is_empty() {
        return;
    }
    state.stats.tables[ti].triggers.fetch_add(
        fresh.len() as u64 * rules_here.len() as u64,
        Ordering::Relaxed,
    );

    // ── Phase B: each triggered rule over the fresh set, in rule order.
    for &ri in rules_here {
        let rule = &state.program.rules()[ri];
        match &rule.plan {
            Some(plan) => run_join_rule(state, key, rule, plan, &fresh, pool),
            None => {
                // Opaque body: per-tuple firing is its only defined
                // execution (same context reuse as `fire_rules`).
                let ctx = RuleCtx::new(state, key, &rule.name);
                for t in &fresh {
                    (rule.body)(&ctx, t);
                }
            }
        }
    }
}

/// One join-plan rule over a class's fresh tuples.
///
/// The build side is always the same: the delta is grouped by its
/// stage-0 join-key values (a BTreeMap — `Value` is `Ord` but not
/// `Hash`, and **sorted** group order is what the leapfrog walk
/// leapfrogs over). The probe side follows
/// [`super::EngineConfig::join_strategy`]:
///
/// * [`JoinStrategy::Leapfrog`] — open one sorted column cursor per
///   stage (one store pass each), then walk the sorted groups against
///   the stage-0 cursor with seek/next motions, descending through
///   later stages with per-row cursor seeks. Store work per class is
///   `stages` cursor opens plus the counted gallops, instead of one
///   probe per distinct key.
/// * [`JoinStrategy::HashProbe`] — the PR 8 pass: one indexed Gamma
///   probe per distinct stage-0 key, later stages probed per row
///   combination.
///
/// Emissions are identical; set semantics and the Law of Causality make
/// the difference unobservable downstream (prop-tested).
fn run_join_rule(
    state: &RunState,
    key: &OrderKey,
    rule: &Rule,
    plan: &JoinPlan,
    fresh: &[&Tuple],
    pool: Option<&ThreadPool>,
) {
    state
        .stats
        .delta_join_build_tuples
        .fetch_add(fresh.len() as u64, Ordering::Relaxed);

    let stage0 = plan.first_stage();
    let mut grouped: BTreeMap<Vec<Value>, Vec<&Tuple>> = BTreeMap::new();
    for &t in fresh {
        let k: Vec<Value> = stage0
            .keys
            .iter()
            .map(|&((_, tf), _)| t.get(tf).clone())
            .collect();
        grouped.entry(k).or_default().push(t);
    }
    let groups: Vec<(Vec<Value>, Vec<&Tuple>)> = grouped.into_iter().collect();

    // A keyless stage is a cross join — nothing for a cursor to seek on.
    let leapfrog = state.join_strategy == JoinStrategy::Leapfrog
        && plan.stages.iter().all(|s| !s.keys.is_empty());
    if leapfrog {
        run_join_rule_leapfrog(state, key, rule, plan, &groups, pool);
    } else {
        run_join_rule_hash(state, key, rule, plan, &groups, pool);
    }
}

/// Leapfrog probe side: one shared sorted cursor per stage, walked by
/// every worker with private positions.
fn run_join_rule_leapfrog(
    state: &RunState,
    key: &OrderKey,
    rule: &Rule,
    plan: &JoinPlan,
    groups: &[(Vec<Value>, Vec<&Tuple>)],
    pool: Option<&ThreadPool>,
) {
    // One column view per stage, opened once per (rule × class) and
    // shared by every worker. Each open is one store pass, counted as a
    // query against the probed table so `gamma_probes` stays honest.
    let stage_indexes: Vec<Arc<ColumnIndex>> = plan
        .stages
        .iter()
        .map(|s| {
            let sti = s.probe_table.index();
            state.stats.tables[sti]
                .queries
                .fetch_add(1, Ordering::Relaxed);
            state
                .stats
                .join_cursor_opens
                .fetch_add(1, Ordering::Relaxed);
            state.gamma.open_cursor(s.probe_table, s.keys[0].1)
        })
        .collect();

    let walk = |piece: &[(Vec<Value>, Vec<&Tuple>)]| {
        let mut cursors: Vec<ColumnCursor> = stage_indexes.iter().map(|i| i.cursor()).collect();
        let ctx = RuleCtx::new(state, key, &rule.name);
        for (group_key, members) in piece {
            // The sorted group keys sweep the stage-0 cursor mostly
            // with free next()s; only real jumps count as seeks.
            let candidates: Vec<Tuple> = match cursors[0].seek_exact(&group_key[0]) {
                Some(g) => g
                    .iter()
                    .filter(|p| stage0_residual_ok(&plan.stages[0].keys, p, group_key))
                    .cloned()
                    .collect(),
                None => continue,
            };
            if plan.stages.len() == 1 {
                for p in &candidates {
                    for &t in members.iter() {
                        let rows = [t, p];
                        if (plan.filter)(&rows) {
                            (plan.emit)(&ctx, &rows);
                        }
                    }
                }
            } else {
                for &t in members.iter() {
                    for p in &candidates {
                        let mut rows = vec![t.clone(), p.clone()];
                        leapfrog_descend(plan, &mut cursors, 1, &mut rows, &ctx);
                    }
                }
            }
        }
        let seeks: u64 = cursors.iter().map(|c| c.seeks()).sum();
        if seeks > 0 {
            state.stats.join_seeks.fetch_add(seeks, Ordering::Relaxed);
        }
    };

    match pool {
        Some(pool) if groups.len() > 1 => {
            let chunk = jstar_pool::adaptive_chunk(pool, groups.len()).max(1);
            let walk = &walk;
            pool.scope(|s| {
                s.spawn_batch(
                    groups
                        .chunks(chunk)
                        .map(|piece| move |_: &jstar_pool::Scope<'_>| walk(piece)),
                );
            });
        }
        _ => walk(groups),
    }
}

/// True when `p` satisfies every stage-0 key pair beyond the first (the
/// cursor already matched pair 0); the group key holds the source
/// values in pair order.
fn stage0_residual_ok(keys: &[((usize, usize), usize)], p: &Tuple, group_key: &[Value]) -> bool {
    keys.iter()
        .zip(group_key)
        .skip(1)
        .all(|(&(_, pf), v)| p.get(pf) == v)
}

/// Stages ≥ 1 of a leapfrog walk: seek this stage's shared cursor to
/// the row-sourced key, check residual pairs by direct field equality
/// (no store probes), recurse. `rows[k]` is stage `k`'s matched tuple
/// (row 0 the trigger), so key sources resolve by plain indexing.
fn leapfrog_descend(
    plan: &JoinPlan,
    cursors: &mut [ColumnCursor],
    stage_idx: usize,
    rows: &mut Vec<Tuple>,
    ctx: &RuleCtx<'_>,
) {
    if stage_idx == plan.stages.len() {
        let refs: Vec<&Tuple> = rows.iter().collect();
        if (plan.filter)(&refs) {
            (plan.emit)(ctx, &refs);
        }
        return;
    }
    let stage = &plan.stages[stage_idx];
    let ((srow, sf), _) = stage.keys[0];
    let target = rows[srow].get(sf).clone();
    let candidates: Vec<Tuple> = match cursors[stage_idx].seek_exact(&target) {
        Some(g) => g
            .iter()
            .filter(|p| {
                stage
                    .keys
                    .iter()
                    .skip(1)
                    .all(|&((r, f), pf)| p.get(pf) == rows[r].get(f))
            })
            .cloned()
            .collect(),
        None => return,
    };
    for p in candidates {
        rows.push(p);
        leapfrog_descend(plan, cursors, stage_idx + 1, rows, ctx);
        rows.pop();
    }
}

/// Hash probe side (PR 8): one indexed Gamma probe per distinct
/// stage-0 key, later stages probed once per partial row combination.
fn run_join_rule_hash(
    state: &RunState,
    key: &OrderKey,
    rule: &Rule,
    plan: &JoinPlan,
    groups: &[(Vec<Value>, Vec<&Tuple>)],
    pool: Option<&ThreadPool>,
) {
    let stage0 = plan.first_stage();
    let probe_one = |group_key: &[Value], members: &[&Tuple]| {
        let mut q = Query::on(stage0.probe_table);
        for (&(_, pf), v) in stage0.keys.iter().zip(group_key) {
            q.add_eq(pf, v.clone());
        }
        // Same accounting as the per-tuple query path, but once per
        // distinct key instead of once per trigger tuple — the probe
        // reduction the RunReport counters expose.
        let ctx = RuleCtx::new(state, key, &rule.name);
        if plan.stages.len() == 1 {
            hash_probe(state, &q, &mut |p| {
                for &t in members {
                    let rows = [t, p];
                    if (plan.filter)(&rows) {
                        (plan.emit)(&ctx, &rows);
                    }
                }
            });
        } else {
            let mut candidates = Vec::new();
            hash_probe(state, &q, &mut |p| candidates.push(p.clone()));
            for &t in members {
                for p in &candidates {
                    let mut rows = vec![t.clone(), p.clone()];
                    hash_descend(state, plan, 1, &mut rows, &ctx);
                }
            }
        }
    };

    match pool {
        Some(pool) if groups.len() > 1 => {
            let chunk = jstar_pool::adaptive_chunk(pool, groups.len()).max(1);
            let probe_one = &probe_one;
            pool.scope(|s| {
                s.spawn_batch(groups.chunks(chunk).map(|piece| {
                    move |_: &jstar_pool::Scope<'_>| {
                        for (k, members) in piece {
                            probe_one(k, members);
                        }
                    }
                }));
            });
        }
        _ => {
            for (k, members) in groups {
                probe_one(k, members);
            }
        }
    }
}

/// One counted, index-hinted Gamma probe.
fn hash_probe(state: &RunState, q: &Query, f: &mut dyn FnMut(&Tuple)) {
    let ti = q.table.index();
    let use_index = state.plans[ti].query_uses_index(q);
    let pstats = &state.stats.tables[ti];
    pstats.queries.fetch_add(1, Ordering::Relaxed);
    if use_index {
        pstats.queries_indexed.fetch_add(1, Ordering::Relaxed);
    }
    state
        .stats
        .delta_join_probes
        .fetch_add(1, Ordering::Relaxed);
    state.gamma.query_hinted(q, use_index, &mut |p| {
        f(p);
        true
    });
}

/// Stages ≥ 1 of the hash strategy: one probe per partial row.
fn hash_descend(
    state: &RunState,
    plan: &JoinPlan,
    stage_idx: usize,
    rows: &mut Vec<Tuple>,
    ctx: &RuleCtx<'_>,
) {
    if stage_idx == plan.stages.len() {
        let refs: Vec<&Tuple> = rows.iter().collect();
        if (plan.filter)(&refs) {
            (plan.emit)(ctx, &refs);
        }
        return;
    }
    let stage = &plan.stages[stage_idx];
    let mut q = Query::on(stage.probe_table);
    for &((row, f), pf) in &stage.keys {
        q.add_eq(pf, rows[row].get(f).clone());
    }
    let mut candidates = Vec::new();
    hash_probe(state, &q, &mut |p| candidates.push(p.clone()));
    for p in candidates {
        rows.push(p);
        hash_descend(state, plan, stage_idx + 1, rows, ctx);
        rows.pop();
    }
}
