//! The coordinator: a configured engine instance and its step loop,
//! written as the explicit phase state machine described in the
//! [module docs](super) — absorb → extract (committing a surviving
//! lookahead speculation for free) → execute (∥ absorb + next-class
//! prepare when pipelined) → maintain.

use crate::delta::{DeltaQueue, ShardedInbox};
use crate::error::Result;
use crate::gamma::{Gamma, StoreKind};
use crate::orderby::OrderKey;
use crate::program::Program;
use crate::relation::{Join, Join3, Relation, TableHandle, TypedQuery};
use crate::schema::TableId;
use crate::stats::{EngineStats, StepRecord};
use crate::tuple::Tuple;
use jstar_pool::ThreadPool;
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::config::EngineConfig;
use super::pipeline::Pipeline;
use super::report::RunReport;
use super::runtime::{
    process_class_chunk, process_class_delta_join, process_tuple, put_tuple, QueryPlan, RunState,
};
use super::schedule::{slice_pieces, ClassPlan, Lookahead, PreparedExec, Scheduler};
use crate::error::JStarError;

/// A configured instance of a JStar program, ready to run.
pub struct Engine {
    state: Arc<RunState>,
    config: EngineConfig,
    pool: Option<Arc<ThreadPool>>,
    injected: Vec<Tuple>,
    /// Set by [`Engine::restore`]: the next [`Engine::run`] resumes
    /// from the restored state instead of re-putting the program's
    /// initial tuples (which the checkpointed run already processed).
    restored: bool,
}

/// The result of [`Engine::restore_latest`]: which checkpoint was
/// actually restored, and which newer files had to be skipped.
#[derive(Debug)]
pub struct RestoreOutcome {
    /// The checkpoint file the engine restored from.
    pub path: std::path::PathBuf,
    /// Newer checkpoints skipped as unreadable (torn by a crash,
    /// corrupted on disk), newest first, each with the reported reason
    /// — surfaced rather than silently swallowed so callers can alert
    /// on storage rot.
    pub skipped: Vec<(std::path::PathBuf, JStarError)>,
}

impl Engine {
    /// Builds an engine for `program` under `config`.
    ///
    /// Gamma stores default to the mode-appropriate structure (§5: `TreeSet`
    /// sequentially, concurrent ordered store in parallel) unless overridden
    /// per table via [`EngineConfig::store`].
    pub fn new(program: Arc<Program>, config: EngineConfig) -> Engine {
        let n = program.defs().len();
        let kinds: Vec<StoreKind> = (0..n)
            .map(|i| {
                config
                    .stores
                    .get(&TableId(i as u32))
                    .cloned()
                    .unwrap_or_else(|| StoreKind::default_for(!config.sequential))
            })
            .collect();
        let mut gamma = Gamma::new(program.defs(), &kinds);
        // Apply the join-index cache policy while the engine is still
        // single-threaded (swapping the cache later would race workers
        // and discard counters).
        gamma.configure_index_cache(config.index_cache, config.index_cache_max_bytes);
        let pool = if config.sequential {
            None
        } else {
            Some(
                config
                    .pool
                    .clone()
                    .unwrap_or_else(|| Arc::new(ThreadPool::new(config.threads))),
            )
        };
        let mut no_delta = vec![false; n];
        for t in &config.no_delta {
            no_delta[t.index()] = true;
        }
        let mut no_gamma = vec![false; n];
        for t in &config.no_gamma {
            no_gamma[t.index()] = true;
        }
        let plans: Vec<QueryPlan> = (0..n)
            .map(|i| QueryPlan::new(&program.orderbys()[i], &**gamma.store(TableId(i as u32))))
            .collect();
        let workers = pool.as_ref().map(|p| p.num_threads()).unwrap_or(0);
        // Partition function for the staged-tuple bins, derived from the
        // program's orderby schema: hash enough leading key components to
        // reach the first tuple-dependent (`seq`) level of any
        // Delta-eligible table. Workloads whose tables share one stratum
        // (Dijkstra's Estimates) then still spread across partitions by
        // the seq value instead of collapsing into one bin.
        let prefix_len = (0..n)
            .filter(|i| !no_delta[*i])
            .map(|i| {
                let comps = &program.orderbys()[i].components;
                comps
                    .iter()
                    .position(|c| matches!(c, crate::orderby::ResolvedComponent::Seq { .. }))
                    .map(|p| p + 1)
                    .unwrap_or(comps.len())
            })
            .max()
            .unwrap_or(1)
            .clamp(1, 4);
        let partitions = if workers > 1 {
            (workers * 2).next_power_of_two()
        } else {
            1
        };
        let state = Arc::new(RunState {
            program: Arc::clone(&program),
            gamma,
            inbox: ShardedInbox::with_partitioning(workers, partitions, prefix_len),
            plans,
            no_delta,
            no_gamma,
            type_check: config.type_check,
            enforce_causality: config.enforce_causality,
            output: Mutex::new(Vec::new()),
            errors: Mutex::new(Vec::new()),
            stats: EngineStats::new(n),
            pool: pool.clone(),
            join_strategy: config.join_strategy,
        });
        Engine {
            state,
            config,
            pool,
            injected: Vec::new(),
            restored: false,
        }
    }

    /// Queues an external event tuple (§3: "the input tuples are added to
    /// the Delta Set, and can then trigger various rules"). Must be called
    /// before [`Engine::run`].
    pub fn inject(&mut self, t: Tuple) {
        self.injected.push(t);
    }

    /// Typed [`Engine::inject`]: queues an external event relation.
    pub fn inject_rel<R: Relation>(&mut self, row: R) {
        let id = self.state.program.handle::<R>().id();
        self.injected.push(Tuple::new(id, row.into_values()));
    }

    /// Runs the program to quiescence (empty Delta set).
    ///
    /// The step loop is the four-phase machine of the
    /// [module docs](super): each iteration **absorbs** staged tuples
    /// into the Delta queue, **extracts** the minimal equivalence
    /// class — taken for free from the lookahead when a speculation
    /// survived ([`EngineConfig::pipeline_depth`] ≥ 2) — **executes**
    /// it (overlapping the next absorb and the next extraction when
    /// pipelined), then **maintains** the stores at the quiescent
    /// point.
    pub fn run(&mut self) -> Result<RunReport> {
        let start = Instant::now();
        let state = &*self.state;

        // Initial puts (from program source) and injected events enter at
        // the minimal key, so they may target any table. A restored
        // engine skips the initial puts — the checkpointed run already
        // processed them (its pending Delta tuples arrive through the
        // injected queue instead).
        let min = OrderKey::minimum();
        if !self.restored {
            for t in state.program.initial() {
                put_tuple(state, &min, "<init>", t.clone());
            }
        }
        for t in self.injected.drain(..) {
            put_tuple(state, &min, "<inject>", t);
        }

        let mut tree = DeltaQueue::new(self.config.delta);
        let mut pipeline = Pipeline::new(state, &self.config);
        // Which tables trigger at least one join-plan rule — the static
        // half of the delta-join eligibility check (the dynamic half is
        // the per-class size/uniformity test).
        let join_tables: Vec<bool> = (0..state.program.defs().len())
            .map(|ti| {
                state.program.rules_by_trigger()[ti]
                    .iter()
                    .any(|&ri| state.program.rules()[ri].plan.is_some())
            })
            .collect();
        let scheduler = Scheduler::new(self.config.inline_class_threshold)
            .with_delta_join(self.config.delta_join_threshold, join_tables);
        let mut lookahead = Lookahead::new(pipeline.lookahead_enabled());
        // Eager index refresh: one background-lane batch in flight at a
        // time, submitted at the end of each maintain phase so catch-up
        // hides behind the next step's execute window, and joined at the
        // start of the next maintain phase — before any store surgery
        // (retain/compact) that requires the quiescent point.
        let eager_refresh = matches!(
            self.config.index_cache,
            crate::gamma::IndexCachePolicy::EagerRefresh
        );
        let mut pending_refresh: Option<jstar_pool::TaskBatch<()>> = None;
        let mut steps: u64 = 0;
        let mut checkpoints: u64 = 0;
        let mut checkpoint_time = Duration::ZERO;
        // The first checkpoint discovers where the sequence left off
        // (a resumed run must number its files after the ones it
        // restored from); later ones just increment.
        let mut checkpoint_seq: Option<u64> = None;
        // The per-step phase timers share the record_steps gate:
        // profiling runs get the split; production runs pay no clock
        // reads in the coordinator loop beyond the few per step the
        // adaptive overlap controller needs.
        let timing = self.config.record_steps;
        loop {
            if state.has_errors() {
                break;
            }

            // ── Phase 1: absorb ─────────────────────────────────────
            // Everything staged by earlier steps must be queued (and
            // checked against the speculation) before the next extract
            // — a staged key may order before the current tree minimum.
            // Under pipelining most of this already happened during the
            // previous execute phase; this drains the epoch ring and
            // the remainder.
            pipeline.absorb(state, &mut tree, self.pool.as_deref(), &mut lookahead);

            // ── Phase 2: extract ────────────────────────────────────
            // A surviving speculation *is* the minimal class (every
            // merge since it was prepared ordered strictly after it),
            // with its execution shape already built — forked classes
            // arrive pre-sliced into chunk jobs, so the fan-out
            // launches with zero extraction, planning, or boundary
            // work. Otherwise pop.
            let (key, mut class, speculative_exec) = match lookahead.take(&state.stats) {
                Some((prepared, exec)) => (prepared.key, prepared.tuples, Some(exec)),
                None => match tree.pop_min_class() {
                    Some((key, class)) => (key, class, None),
                    None => break,
                },
            };
            steps += 1;
            if let Some(max) = self.config.max_steps {
                if steps > max {
                    state.record_error(JStarError::Other(format!(
                        "step limit {max} exceeded — is a rule putting tuples unconditionally?"
                    )));
                    break;
                }
            }
            // A pre-sliced speculation's tuples live in its pieces.
            let class_size = class.len()
                + speculative_exec
                    .as_ref()
                    .map_or(0, PreparedExec::sliced_len);
            state.stats.record_step(class_size);
            let exec_start = timing.then(Instant::now);

            // ── Phase 3: execute (∥ absorb + next extract when pipelined) ──
            // Fresh pops decide their shape here; a speculation decided
            // (and pre-sliced) it inside the previous execute window.
            let exec = match speculative_exec {
                Some(exec) => exec,
                None if scheduler.delta_join(&class) => PreparedExec::DeltaJoin,
                None => match scheduler.plan(self.pool.as_deref(), class_size) {
                    ClassPlan::Inline { sort } => PreparedExec::Inline { sort },
                    ClassPlan::Forked { chunk } => PreparedExec::Forked {
                        pieces: slice_pieces(std::mem::take(&mut class), chunk),
                    },
                },
            };
            match exec {
                PreparedExec::DeltaJoin => {
                    // Batched semi-naive execution: the whole class is the
                    // delta, and join-plan rules walk Gamma once per
                    // class instead of once per tuple. Like the inline
                    // arm this runs without the pipeline overlap window —
                    // the join fan-out keeps the pool busy itself.
                    state
                        .stats
                        .delta_join_classes
                        .fetch_add(1, Ordering::Relaxed);
                    process_class_delta_join(state, &key, &class, self.pool.as_deref());
                }
                PreparedExec::Forked { pieces } => {
                    state.stats.forked_classes.fetch_add(1, Ordering::Relaxed);
                    // lint: allow(expect): the planner only emits Forked when a pool exists.
                    let pool = self.pool.as_ref().expect("forked plan implies a pool");
                    let key = &key;
                    let pieces = &pieces;
                    let pipeline = &mut pipeline;
                    let tree = &mut tree;
                    let lookahead = &mut lookahead;
                    pool.scope(|s| {
                        // All chunks submitted as one batch: a single
                        // wakeup, no per-task notify storm.
                        s.spawn_batch(pieces.iter().map(|piece| {
                            move |_: &jstar_pool::Scope<'_>| {
                                process_class_chunk(state, key, piece);
                            }
                        }));
                        if pipeline.pipelined() {
                            // Speculate on the next step while this one
                            // runs (no-op below depth 2), then join the
                            // class from inside the scope, interleaving
                            // epoch absorption with helping — the
                            // drain/execute overlap.
                            lookahead.prepare(
                                tree,
                                &scheduler,
                                Some(pool),
                                pipeline.absorbed_seq(),
                            );
                            pipeline.overlap(s, state, tree, pool, lookahead, &scheduler);
                        }
                    });
                }
                PreparedExec::Inline { sort } => {
                    // Narrow class or sequential engine: fork/join
                    // overhead exceeds the work, execute on the
                    // coordinator. The sequential engine additionally
                    // sorts for a deterministic intra-class order.
                    state.stats.inline_classes.fetch_add(1, Ordering::Relaxed);
                    if sort {
                        class.sort();
                    }
                    for t in class {
                        process_tuple(state, &key, t);
                    }
                }
            }

            if let Some(t0) = exec_start {
                let exec_elapsed = t0.elapsed();
                state
                    .stats
                    .execute_nanos
                    .fetch_add(exec_elapsed.as_nanos() as u64, Ordering::Relaxed);
                state.stats.log_step(StepRecord {
                    key: key.to_string(),
                    class_size,
                    micros: exec_elapsed.as_micros(),
                });
            }

            // ── Phase 4: maintain ───────────────────────────────────
            // The coordinator's quiescent point: workers have joined,
            // so single-threaded store surgery is safe. §5 step 4's
            // manual tuple-lifetime hints run here, followed by
            // tombstone compaction for stores the hints have hollowed
            // out.
            //
            // The previous step's index-refresh batch is joined first:
            // its jobs read the Gamma stores, and the retain/compact
            // surgery below requires that no such reader remains.
            if let (Some(batch), Some(pool)) = (pending_refresh.take(), self.pool.as_deref()) {
                batch.join(pool);
            }
            if self.config.hint_interval > 0 && steps.is_multiple_of(self.config.hint_interval) {
                for (table, keep) in &self.config.lifetime_hints {
                    let store = state.gamma.store(*table);
                    store.retain(&**keep);
                    if store.maybe_compact(self.config.compact_tombstones_above) {
                        state.stats.tables[table.index()]
                            .compactions
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }

            // Periodic checkpointing shares the quiescent point: the
            // Delta queue is forced fully current (every staged epoch
            // absorbed, any lookahead speculation returned), then the
            // Gamma stores and pending tuples stream out atomically.
            // A failed write fails the run — the harness's injected
            // crashes rely on that behaving exactly like process death,
            // and a real I/O error silently skipped would leave the
            // user thinking they have a checkpoint they don't.
            if self.config.checkpoint_every > 0
                && steps.is_multiple_of(self.config.checkpoint_every)
                && self.config.checkpoint_path.is_some()
            {
                // lint: allow(expect): is_some() is part of the guard condition above.
                let dir = self.config.checkpoint_path.as_deref().expect("checked");
                let t0 = Instant::now();
                pipeline.absorb(state, &mut tree, self.pool.as_deref(), &mut lookahead);
                lookahead.flush(&mut tree, &state.stats);
                state.inbox.assert_quiescent();
                let written = std::fs::create_dir_all(dir)
                    .map_err(|e| JStarError::Io(format!("{}: {e}", dir.display())))
                    .and_then(|()| match checkpoint_seq {
                        Some(seq) => Ok(seq),
                        None => crate::persist::next_checkpoint_seq(dir),
                    })
                    .and_then(|seq| {
                        let meta = crate::persist::SnapshotMeta {
                            steps,
                            tuples_processed: state.stats.tuples_processed.load(Ordering::Relaxed),
                        };
                        let file = dir.join(crate::persist::checkpoint_file_name(seq));
                        crate::persist::write_snapshot(
                            state.program.defs(),
                            &state.gamma,
                            &mut |emit| tree.for_each_pending(emit),
                            meta,
                            &file,
                            self.pool.as_deref(),
                        )?;
                        crate::persist::rotate_checkpoints(dir, self.config.checkpoint_keep)?;
                        Ok(seq)
                    });
                match written {
                    Ok(seq) => {
                        checkpoint_seq = Some(seq + 1);
                        checkpoints += 1;
                        checkpoint_time += t0.elapsed();
                    }
                    Err(e) => {
                        state.record_error(e);
                        break;
                    }
                }
            }

            // Eager index refresh: catch every cached column view up to
            // the journal generation this step's inserts reached, so the
            // next join-heavy class finds warm indexes at extract time.
            // Parallel runs submit the catch-ups on the pool's
            // background lane — only workers with no class chunk left
            // pick them up, the same overlap trick as the Delta merge —
            // and the batch is joined at the top of the next maintain
            // phase. Sequential runs refresh inline.
            if eager_refresh {
                let tables = state.gamma.index_cache().cached_tables();
                if !tables.is_empty() {
                    match &self.pool {
                        Some(pool) => {
                            let jobs: Vec<_> = tables
                                .into_iter()
                                .map(|ti| {
                                    let st = Arc::clone(&self.state);
                                    move || st.gamma.refresh_indexes(TableId(ti as u32))
                                })
                                .collect();
                            pending_refresh = Some(jstar_pool::submit_background(pool, jobs));
                        }
                        None => {
                            for ti in tables {
                                state.gamma.refresh_indexes(TableId(ti as u32));
                            }
                        }
                    }
                }
            }
        }

        if let (Some(batch), Some(pool)) = (pending_refresh.take(), self.pool.as_deref()) {
            batch.join(pool);
        }

        let errors = state.errors.lock();
        if let Some(first) = errors.first() {
            return Err(first.clone());
        }
        drop(errors);

        let cache_stats = state.gamma.index_cache().stats();
        Ok(RunReport {
            steps,
            tuples_processed: state.stats.tuples_processed.load(Ordering::Relaxed),
            elapsed: start.elapsed(),
            drain_time: Duration::from_nanos(state.stats.drain_nanos.load(Ordering::Relaxed)),
            partition_time: Duration::from_nanos(
                state.stats.partition_nanos.load(Ordering::Relaxed),
            ),
            merge_time: Duration::from_nanos(state.stats.merge_nanos.load(Ordering::Relaxed)),
            overlap_time: Duration::from_nanos(state.stats.overlap_nanos.load(Ordering::Relaxed)),
            execute_time: Duration::from_nanos(state.stats.execute_nanos.load(Ordering::Relaxed)),
            inline_classes: state.stats.inline_classes.load(Ordering::Relaxed),
            forked_classes: state.stats.forked_classes.load(Ordering::Relaxed),
            pipeline_depth: pipeline.effective_depth(),
            lookahead_hits: state.stats.lookahead_hits.load(Ordering::Relaxed),
            lookahead_misses: state.stats.lookahead_misses.load(Ordering::Relaxed),
            checkpoints,
            checkpoint_time,
            delta_join_classes: state.stats.delta_join_classes.load(Ordering::Relaxed),
            delta_join_probes: state.stats.delta_join_probes.load(Ordering::Relaxed),
            delta_join_build_tuples: state.stats.delta_join_build_tuples.load(Ordering::Relaxed),
            gamma_probes: state
                .stats
                .tables
                .iter()
                .map(|t| t.queries.load(Ordering::Relaxed))
                .sum(),
            join_seeks: state.stats.join_seeks.load(Ordering::Relaxed),
            join_cursor_opens: state.stats.join_cursor_opens.load(Ordering::Relaxed),
            index_cache_hits: cache_stats.hits,
            index_cache_misses: cache_stats.misses,
            index_catchup_tuples: cache_stats.catchup_tuples,
            index_build_tuples: cache_stats.build_tuples,
            output: state.output.lock().clone(),
        })
    }

    /// Writes a snapshot of the current Gamma database to `path`,
    /// atomically (temp + rename). Meant for a quiescent engine — after
    /// [`Engine::run`] returns — so the pending-Delta section is empty;
    /// mid-run durability is the checkpointing path
    /// ([`EngineConfig::checkpoint`]), which also captures pending
    /// tuples.
    pub fn snapshot(&self, path: &std::path::Path) -> Result<()> {
        let meta = crate::persist::SnapshotMeta {
            steps: self.state.stats.steps.load(Ordering::Relaxed),
            tuples_processed: self.state.stats.tuples_processed.load(Ordering::Relaxed),
        };
        crate::persist::write_snapshot(
            self.state.program.defs(),
            &self.state.gamma,
            &mut |_emit| {},
            meta,
            path,
            self.pool.as_deref(),
        )
    }

    /// The order-independent digest of the live Gamma database (see
    /// [`crate::persist::gamma_digest`]). Equal logical states produce
    /// equal digests across thread counts, pipeline depths and
    /// checkpoint/restore cycles — determinism and recovery checks are
    /// one `u64` comparison.
    pub fn content_hash(&self) -> u64 {
        crate::persist::gamma_digest(self.state.program.defs(), &self.state.gamma)
    }

    /// Restores the snapshot at `path` into this engine, replacing the
    /// Gamma contents wholesale and queueing the snapshot's pending
    /// Delta tuples for the next [`Engine::run`] (which resumes the
    /// interrupted schedule instead of re-running the initial puts).
    ///
    /// Meant for a freshly built engine. Never panics on bad input:
    /// truncated, bit-flipped or crafted files are a reported
    /// [`JStarError::CorruptSnapshot`], and a snapshot from a different
    /// program schema is a [`JStarError::SchemaMismatch`]. Validation
    /// completes before any store is touched, so a failed restore
    /// leaves the engine unmodified.
    pub fn restore(&mut self, path: &std::path::Path) -> Result<()> {
        let snap = crate::persist::read_snapshot(path)?;
        self.apply_snapshot(snap)
    }

    /// Restores from the newest intact checkpoint in `dir`: files are
    /// tried newest-first, and one that fails to read or load —
    /// typically the newest, torn by the very crash being recovered
    /// from — is skipped (recorded in [`RestoreOutcome::skipped`]) in
    /// favour of its predecessor. A [`JStarError::SchemaMismatch`]
    /// aborts immediately: the whole directory belongs to one program,
    /// so older files cannot fare better. Errs when the directory holds
    /// no checkpoint at all, or when every checkpoint is unreadable.
    pub fn restore_latest(&mut self, dir: &std::path::Path) -> Result<RestoreOutcome> {
        let files = crate::persist::list_checkpoints(dir)?;
        if files.is_empty() {
            return Err(JStarError::Io(format!(
                "{}: no checkpoints found",
                dir.display()
            )));
        }
        let mut skipped = Vec::new();
        for path in files.into_iter().rev() {
            match crate::persist::read_snapshot(&path).and_then(|s| self.apply_snapshot(s)) {
                Ok(()) => return Ok(RestoreOutcome { path, skipped }),
                Err(e @ JStarError::SchemaMismatch(_)) => return Err(e),
                Err(e) => skipped.push((path, e)),
            }
        }
        Err(JStarError::CorruptSnapshot(format!(
            "{}: every checkpoint was unreadable ({} tried)",
            dir.display(),
            skipped.len()
        )))
    }

    /// Validates a decoded snapshot against this engine's program and
    /// applies it: bulk-imports each table's tuples into its Gamma
    /// store (a segment-level rebuild, O(live) — not per-tuple
    /// re-insertion through the dedup path) and queues the pending
    /// Delta tuples for re-injection (their order keys are recomputed
    /// from tuple fields by the normal put path).
    fn apply_snapshot(&mut self, snap: crate::persist::Snapshot) -> Result<()> {
        let defs = self.state.program.defs();
        let expected = crate::persist::schema_fingerprint(defs);
        if snap.schema_fingerprint != expected {
            return Err(JStarError::SchemaMismatch(format!(
                "snapshot fingerprint {:#018x} != this program's {expected:#018x} \
                 (table names, column types, keys or orderby lists differ)",
                snap.schema_fingerprint
            )));
        }
        if snap.tables.len() != defs.len() {
            return Err(JStarError::SchemaMismatch(format!(
                "snapshot holds {} tables, program declares {}",
                snap.tables.len(),
                defs.len()
            )));
        }
        // Decode and validate everything before touching any store, so
        // a failed restore leaves the engine unmodified.
        let mut loads: Vec<Vec<Tuple>> = Vec::with_capacity(defs.len());
        for (section, def) in snap.tables.into_iter().zip(defs) {
            if section.name != def.name {
                return Err(JStarError::SchemaMismatch(format!(
                    "snapshot table `{}` where program declares `{}`",
                    section.name, def.name
                )));
            }
            let mut tuples = Vec::with_capacity(section.tuples.len());
            for fields in section.tuples {
                def.type_check(&fields).map_err(|msg| {
                    JStarError::CorruptSnapshot(format!("table {}: {msg}", def.name))
                })?;
                tuples.push(Tuple::new(def.id, fields));
            }
            loads.push(tuples);
        }
        let mut pending = Vec::with_capacity(snap.pending.len());
        for (ti, fields) in snap.pending {
            let def = defs.get(ti as usize).ok_or_else(|| {
                JStarError::CorruptSnapshot(format!(
                    "pending tuple names table index {ti}, program has {}",
                    defs.len()
                ))
            })?;
            def.type_check(&fields)
                .map_err(|msg| JStarError::CorruptSnapshot(format!("pending: {msg}")))?;
            pending.push(Tuple::new(def.id, fields));
        }
        for (def, tuples) in defs.iter().zip(loads) {
            self.state.gamma.store(def.id).import_snapshot(tuples);
        }
        self.injected.extend(pending);
        self.restored = true;
        Ok(())
    }

    /// The Gamma database (inspect results after a run).
    pub fn gamma(&self) -> &Gamma {
        &self.state.gamma
    }

    /// Engine statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.state.stats
    }

    /// The program being executed.
    pub fn program(&self) -> &Arc<Program> {
        &self.state.program
    }

    /// The typed handle for relation `R` (panics if unregistered).
    pub fn handle<R: Relation>(&self) -> TableHandle<R> {
        self.state.program.handle::<R>()
    }

    /// Collects and decodes every Gamma row matching a typed query —
    /// the typed read path for inspecting results after a run:
    /// `engine.collect_rel(Ship::query())`.
    pub fn collect_rel<R: Relation>(&self, q: TypedQuery<R>) -> Vec<R> {
        let q = q.lower(self.handle::<R>());
        let mut out = Vec::new();
        self.state.gamma.query(&q, &mut |t| {
            out.push(R::from_tuple(t));
            true
        });
        out
    }

    /// Streams decoded Gamma rows matching a typed query; return
    /// `false` from the callback to stop early.
    pub fn for_each_rel_gamma<R: Relation>(&self, q: TypedQuery<R>, mut f: impl FnMut(R) -> bool) {
        let q = q.lower(self.handle::<R>());
        self.state.gamma.query(&q, &mut |t| f(R::from_tuple(t)));
    }

    /// Collected output lines so far.
    pub fn output(&self) -> Vec<String> {
        self.state.output.lock().clone()
    }

    /// Evaluates a typed two-relation join over Gamma with one
    /// leapfrog sorted-merge walk: `join::<Edge, Edge>().on(..)`.
    ///
    /// Both relations' column views are opened once (each counted as a
    /// query plus a cursor open), then intersected on the first `on`
    /// pair with coordinated seek/next motions — the fixed variable
    /// order of the typed builder, no optimizer. Further `on` pairs are
    /// residual equality checks inside matched groups. Panics when no
    /// `on` pair was declared (a cross join has nothing to merge on).
    pub fn join_rel<A: Relation, B: Relation>(&self, j: Join<A, B>, mut f: impl FnMut(A, B)) {
        assert!(
            !j.on.is_empty(),
            "join::<A, B>() requires at least one on() pair"
        );
        let ta = self.handle::<A>().id();
        let tb = self.handle::<B>().id();
        let (fa, fb) = j.on[0];
        let stats = &self.state.stats;
        stats.tables[ta.index()]
            .queries
            .fetch_add(1, Ordering::Relaxed);
        stats.tables[tb.index()]
            .queries
            .fetch_add(1, Ordering::Relaxed);
        stats.join_cursor_opens.fetch_add(2, Ordering::Relaxed);
        let ia = self.state.gamma.open_cursor(ta, fa);
        let ib = self.state.gamma.open_cursor(tb, fb);
        let mut ca = ia.cursor();
        let mut cb = ib.cursor();
        while let (Some(ka), Some(kb)) = (ca.key().cloned(), cb.key().cloned()) {
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => ca.seek(&kb),
                std::cmp::Ordering::Greater => cb.seek(&ka),
                std::cmp::Ordering::Equal => {
                    if let (Some(ga), Some(gb)) = (ca.group(), cb.group()) {
                        for at in ga {
                            for bt in gb {
                                if j.on[1..].iter().all(|&(af, bf)| at.get(af) == bt.get(bf)) {
                                    f(A::from_tuple(at), B::from_tuple(bt));
                                }
                            }
                        }
                    }
                    ca.next();
                    cb.next();
                }
            }
        }
        let seeks = ca.seeks() + cb.seeks();
        if seeks > 0 {
            stats.join_seeks.fetch_add(seeks, Ordering::Relaxed);
        }
    }

    /// Evaluates a typed three-relation join over Gamma:
    /// `join3::<Edge, Edge, Edge>().on_ab(..).on_bc(..)`.
    ///
    /// `A` and `B` leapfrog on the first `on_ab` pair exactly as in
    /// [`Engine::join_rel`]; each matched `(a, b)` row then seeks a
    /// shared `C` cursor — keyed by the first `on_bc` pair, or the
    /// first `on_ac` pair when no `b`–`c` key exists — with every
    /// remaining pair checked as a residual equality. Panics without an
    /// `on_ab` pair or without any `C`-side constraint.
    pub fn join3_rel<A: Relation, B: Relation, C: Relation>(
        &self,
        j: Join3<A, B, C>,
        mut f: impl FnMut(A, B, C),
    ) {
        assert!(!j.ab.is_empty(), "join3 requires at least one on_ab() pair");
        assert!(
            !(j.bc.is_empty() && j.ac.is_empty()),
            "join3 requires an on_bc() or on_ac() pair to key C"
        );
        let ta = self.handle::<A>().id();
        let tb = self.handle::<B>().id();
        let tc = self.handle::<C>().id();
        let (fa, fb) = j.ab[0];
        // C's cursor column: prefer a b-sourced key (available at every
        // matched pair), else an a-sourced one.
        let (c_from_b, c_src, fc) = match j.bc.first() {
            Some(&(bf, cf)) => (true, bf, cf),
            None => (false, j.ac[0].0, j.ac[0].1),
        };
        let stats = &self.state.stats;
        for t in [ta, tb, tc] {
            stats.tables[t.index()]
                .queries
                .fetch_add(1, Ordering::Relaxed);
        }
        stats.join_cursor_opens.fetch_add(3, Ordering::Relaxed);
        let ia = self.state.gamma.open_cursor(ta, fa);
        let ib = self.state.gamma.open_cursor(tb, fb);
        let ic = self.state.gamma.open_cursor(tc, fc);
        let mut ca = ia.cursor();
        let mut cb = ib.cursor();
        let mut cc = ic.cursor();
        while let (Some(ka), Some(kb)) = (ca.key().cloned(), cb.key().cloned()) {
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => ca.seek(&kb),
                std::cmp::Ordering::Greater => cb.seek(&ka),
                std::cmp::Ordering::Equal => {
                    // Borrowed group slices stream straight into the
                    // residual-filter stage — no per-key materialization
                    // (`cc` is a separate cursor, so seeking it never
                    // invalidates these borrows).
                    let (ga, gb) = match (ca.group(), cb.group()) {
                        (Some(ga), Some(gb)) => (ga, gb),
                        _ => break,
                    };
                    for at in ga {
                        for bt in gb {
                            if !j.ab[1..].iter().all(|&(af, bf)| at.get(af) == bt.get(bf)) {
                                continue;
                            }
                            let target = if c_from_b {
                                bt.get(c_src)
                            } else {
                                at.get(c_src)
                            };
                            let target = target.clone();
                            if let Some(gc) = cc.seek_exact(&target) {
                                for ct in gc {
                                    let bc_ok =
                                        j.bc.iter().all(|&(bf, cf)| bt.get(bf) == ct.get(cf));
                                    let ac_ok =
                                        j.ac.iter().all(|&(af, cf)| at.get(af) == ct.get(cf));
                                    if bc_ok && ac_ok {
                                        f(A::from_tuple(at), B::from_tuple(bt), C::from_tuple(ct));
                                    }
                                }
                            }
                        }
                    }
                    ca.next();
                    cb.next();
                }
            }
        }
        let seeks = ca.seeks() + cb.seeks() + cc.seeks();
        if seeks > 0 {
            stats.join_seeks.fetch_add(seeks, Ordering::Relaxed);
        }
    }
}
