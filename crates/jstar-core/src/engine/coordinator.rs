//! The coordinator: a configured engine instance and its step loop,
//! written as the explicit phase state machine described in the
//! [module docs](super) — absorb → extract (committing a surviving
//! lookahead speculation for free) → execute (∥ absorb + next-class
//! prepare when pipelined) → maintain.

use crate::delta::{DeltaQueue, ShardedInbox};
use crate::error::Result;
use crate::gamma::{Gamma, StoreKind};
use crate::orderby::OrderKey;
use crate::program::Program;
use crate::relation::{Relation, TableHandle, TypedQuery};
use crate::schema::TableId;
use crate::stats::{EngineStats, StepRecord};
use crate::tuple::Tuple;
use jstar_pool::ThreadPool;
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::config::EngineConfig;
use super::pipeline::Pipeline;
use super::report::RunReport;
use super::runtime::{process_class_chunk, process_tuple, put_tuple, QueryPlan, RunState};
use super::schedule::{ClassPlan, Lookahead, Scheduler};
use crate::error::JStarError;

/// A configured instance of a JStar program, ready to run.
pub struct Engine {
    state: Arc<RunState>,
    config: EngineConfig,
    pool: Option<Arc<ThreadPool>>,
    injected: Vec<Tuple>,
}

impl Engine {
    /// Builds an engine for `program` under `config`.
    ///
    /// Gamma stores default to the mode-appropriate structure (§5: `TreeSet`
    /// sequentially, concurrent ordered store in parallel) unless overridden
    /// per table via [`EngineConfig::store`].
    pub fn new(program: Arc<Program>, config: EngineConfig) -> Engine {
        let n = program.defs().len();
        let kinds: Vec<StoreKind> = (0..n)
            .map(|i| {
                config
                    .stores
                    .get(&TableId(i as u32))
                    .cloned()
                    .unwrap_or_else(|| StoreKind::default_for(!config.sequential))
            })
            .collect();
        let gamma = Gamma::new(program.defs(), &kinds);
        let pool = if config.sequential {
            None
        } else {
            Some(
                config
                    .pool
                    .clone()
                    .unwrap_or_else(|| Arc::new(ThreadPool::new(config.threads))),
            )
        };
        let mut no_delta = vec![false; n];
        for t in &config.no_delta {
            no_delta[t.index()] = true;
        }
        let mut no_gamma = vec![false; n];
        for t in &config.no_gamma {
            no_gamma[t.index()] = true;
        }
        let plans: Vec<QueryPlan> = (0..n)
            .map(|i| QueryPlan::new(&program.orderbys()[i], &**gamma.store(TableId(i as u32))))
            .collect();
        let workers = pool.as_ref().map(|p| p.num_threads()).unwrap_or(0);
        // Partition function for the staged-tuple bins, derived from the
        // program's orderby schema: hash enough leading key components to
        // reach the first tuple-dependent (`seq`) level of any
        // Delta-eligible table. Workloads whose tables share one stratum
        // (Dijkstra's Estimates) then still spread across partitions by
        // the seq value instead of collapsing into one bin.
        let prefix_len = (0..n)
            .filter(|i| !no_delta[*i])
            .map(|i| {
                let comps = &program.orderbys()[i].components;
                comps
                    .iter()
                    .position(|c| matches!(c, crate::orderby::ResolvedComponent::Seq { .. }))
                    .map(|p| p + 1)
                    .unwrap_or(comps.len())
            })
            .max()
            .unwrap_or(1)
            .clamp(1, 4);
        let partitions = if workers > 1 {
            (workers * 2).next_power_of_two()
        } else {
            1
        };
        let state = Arc::new(RunState {
            program: Arc::clone(&program),
            gamma,
            inbox: ShardedInbox::with_partitioning(workers, partitions, prefix_len),
            plans,
            no_delta,
            no_gamma,
            type_check: config.type_check,
            enforce_causality: config.enforce_causality,
            output: Mutex::new(Vec::new()),
            errors: Mutex::new(Vec::new()),
            stats: EngineStats::new(n),
            pool: pool.clone(),
        });
        Engine {
            state,
            config,
            pool,
            injected: Vec::new(),
        }
    }

    /// Queues an external event tuple (§3: "the input tuples are added to
    /// the Delta Set, and can then trigger various rules"). Must be called
    /// before [`Engine::run`].
    pub fn inject(&mut self, t: Tuple) {
        self.injected.push(t);
    }

    /// Typed [`Engine::inject`]: queues an external event relation.
    pub fn inject_rel<R: Relation>(&mut self, row: R) {
        let id = self.state.program.handle::<R>().id();
        self.injected.push(Tuple::new(id, row.into_values()));
    }

    /// Runs the program to quiescence (empty Delta set).
    ///
    /// The step loop is the four-phase machine of the
    /// [module docs](super): each iteration **absorbs** staged tuples
    /// into the Delta queue, **extracts** the minimal equivalence
    /// class — taken for free from the lookahead when a speculation
    /// survived ([`EngineConfig::pipeline_depth`] ≥ 2) — **executes**
    /// it (overlapping the next absorb and the next extraction when
    /// pipelined), then **maintains** the stores at the quiescent
    /// point.
    pub fn run(&mut self) -> Result<RunReport> {
        let start = Instant::now();
        let state = &*self.state;

        // Initial puts (from program source) and injected events enter at
        // the minimal key, so they may target any table.
        let min = OrderKey::minimum();
        for t in state.program.initial() {
            put_tuple(state, &min, "<init>", t.clone());
        }
        for t in self.injected.drain(..) {
            put_tuple(state, &min, "<inject>", t);
        }

        let mut tree = DeltaQueue::new(self.config.delta);
        let mut pipeline = Pipeline::new(state, &self.config);
        let scheduler = Scheduler::new(self.config.inline_class_threshold);
        let mut lookahead = Lookahead::new(pipeline.lookahead_enabled());
        let mut steps: u64 = 0;
        // The per-step phase timers share the record_steps gate:
        // profiling runs get the split; production runs pay no clock
        // reads in the coordinator loop beyond the few per step the
        // adaptive overlap controller needs.
        let timing = self.config.record_steps;
        loop {
            if state.has_errors() {
                break;
            }

            // ── Phase 1: absorb ─────────────────────────────────────
            // Everything staged by earlier steps must be queued (and
            // checked against the speculation) before the next extract
            // — a staged key may order before the current tree minimum.
            // Under pipelining most of this already happened during the
            // previous execute phase; this drains the epoch ring and
            // the remainder.
            pipeline.absorb(state, &mut tree, self.pool.as_deref(), &mut lookahead);

            // ── Phase 2: extract ────────────────────────────────────
            // A surviving speculation *is* the minimal class (every
            // merge since it was prepared ordered strictly after it),
            // with its execution plan already built — the fan-out
            // launches with zero extraction work. Otherwise pop.
            let (key, mut class, speculative_plan) = match lookahead.take(&state.stats) {
                Some((prepared, plan)) => (prepared.key, prepared.tuples, Some(plan)),
                None => match tree.pop_min_class() {
                    Some((key, class)) => (key, class, None),
                    None => break,
                },
            };
            steps += 1;
            if let Some(max) = self.config.max_steps {
                if steps > max {
                    state.record_error(JStarError::Other(format!(
                        "step limit {max} exceeded — is a rule putting tuples unconditionally?"
                    )));
                    break;
                }
            }
            let class_size = class.len();
            state.stats.record_step(class_size);
            let exec_start = timing.then(Instant::now);

            // ── Phase 3: execute (∥ absorb + next extract when pipelined) ──
            let plan = speculative_plan
                .unwrap_or_else(|| scheduler.plan(self.pool.as_deref(), class_size));
            match plan {
                ClassPlan::Forked { chunk } => {
                    state.stats.forked_classes.fetch_add(1, Ordering::Relaxed);
                    let pool = self.pool.as_ref().expect("forked plan implies a pool");
                    let key = &key;
                    let pipeline = &mut pipeline;
                    let tree = &mut tree;
                    let lookahead = &mut lookahead;
                    pool.scope(|s| {
                        // All chunks submitted as one batch: a single
                        // wakeup, no per-task notify storm.
                        s.spawn_batch(class.chunks(chunk).map(|piece| {
                            move |_: &jstar_pool::Scope<'_>| {
                                process_class_chunk(state, key, piece);
                            }
                        }));
                        if pipeline.pipelined() {
                            // Speculate on the next step while this one
                            // runs (no-op below depth 2), then join the
                            // class from inside the scope, interleaving
                            // epoch absorption with helping — the
                            // drain/execute overlap.
                            lookahead.prepare(
                                tree,
                                &scheduler,
                                Some(pool),
                                pipeline.absorbed_seq(),
                            );
                            pipeline.overlap(s, state, tree, pool, lookahead, &scheduler);
                        }
                    });
                }
                ClassPlan::Inline { sort } => {
                    // Narrow class or sequential engine: fork/join
                    // overhead exceeds the work, execute on the
                    // coordinator. The sequential engine additionally
                    // sorts for a deterministic intra-class order.
                    state.stats.inline_classes.fetch_add(1, Ordering::Relaxed);
                    if sort {
                        class.sort();
                    }
                    for t in class {
                        process_tuple(state, &key, t);
                    }
                }
            }

            if let Some(t0) = exec_start {
                let exec_elapsed = t0.elapsed();
                state
                    .stats
                    .execute_nanos
                    .fetch_add(exec_elapsed.as_nanos() as u64, Ordering::Relaxed);
                state.stats.log_step(StepRecord {
                    key: key.to_string(),
                    class_size,
                    micros: exec_elapsed.as_micros(),
                });
            }

            // ── Phase 4: maintain ───────────────────────────────────
            // The coordinator's quiescent point: workers have joined,
            // so single-threaded store surgery is safe. §5 step 4's
            // manual tuple-lifetime hints run here, followed by
            // tombstone compaction for stores the hints have hollowed
            // out.
            if self.config.hint_interval > 0 && steps.is_multiple_of(self.config.hint_interval) {
                for (table, keep) in &self.config.lifetime_hints {
                    let store = state.gamma.store(*table);
                    store.retain(&**keep);
                    if store.maybe_compact(self.config.compact_tombstones_above) {
                        state.stats.tables[table.index()]
                            .compactions
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }

        let errors = state.errors.lock();
        if let Some(first) = errors.first() {
            return Err(first.clone());
        }
        drop(errors);

        Ok(RunReport {
            steps,
            tuples_processed: state.stats.tuples_processed.load(Ordering::Relaxed),
            elapsed: start.elapsed(),
            drain_time: Duration::from_nanos(state.stats.drain_nanos.load(Ordering::Relaxed)),
            partition_time: Duration::from_nanos(
                state.stats.partition_nanos.load(Ordering::Relaxed),
            ),
            merge_time: Duration::from_nanos(state.stats.merge_nanos.load(Ordering::Relaxed)),
            overlap_time: Duration::from_nanos(state.stats.overlap_nanos.load(Ordering::Relaxed)),
            execute_time: Duration::from_nanos(state.stats.execute_nanos.load(Ordering::Relaxed)),
            inline_classes: state.stats.inline_classes.load(Ordering::Relaxed),
            forked_classes: state.stats.forked_classes.load(Ordering::Relaxed),
            pipeline_depth: pipeline.effective_depth(),
            lookahead_hits: state.stats.lookahead_hits.load(Ordering::Relaxed),
            lookahead_misses: state.stats.lookahead_misses.load(Ordering::Relaxed),
            output: state.output.lock().clone(),
        })
    }

    /// The Gamma database (inspect results after a run).
    pub fn gamma(&self) -> &Gamma {
        &self.state.gamma
    }

    /// Engine statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.state.stats
    }

    /// The program being executed.
    pub fn program(&self) -> &Arc<Program> {
        &self.state.program
    }

    /// The typed handle for relation `R` (panics if unregistered).
    pub fn handle<R: Relation>(&self) -> TableHandle<R> {
        self.state.program.handle::<R>()
    }

    /// Collects and decodes every Gamma row matching a typed query —
    /// the typed read path for inspecting results after a run:
    /// `engine.collect_rel(Ship::query())`.
    pub fn collect_rel<R: Relation>(&self, q: TypedQuery<R>) -> Vec<R> {
        let q = q.lower(self.handle::<R>());
        let mut out = Vec::new();
        self.state.gamma.query(&q, &mut |t| {
            out.push(R::from_tuple(t));
            true
        });
        out
    }

    /// Streams decoded Gamma rows matching a typed query; return
    /// `false` from the callback to stop early.
    pub fn for_each_rel_gamma<R: Relation>(&self, q: TypedQuery<R>, mut f: impl FnMut(R) -> bool) {
        let q = q.lower(self.handle::<R>());
        self.state.gamma.query(&q, &mut |t| f(R::from_tuple(t)));
    }

    /// Collected output lines so far.
    pub fn output(&self) -> Vec<String> {
        self.state.output.lock().clone()
    }
}
