//! Unit tests for the engine module family.

use super::*;
use crate::orderby::{seq, strat};
use crate::program::{Program, ProgramBuilder};
use crate::query::Query;
use crate::tuple::Tuple;
use crate::value::Value;
use std::sync::Arc;

/// The paper's bounded Ship program (§3): move right while x < 400.
fn ship_program() -> Arc<Program> {
    let mut p = ProgramBuilder::new();
    let ship = p.table("Ship", |b| {
        b.col_int("frame")
            .col_int("x")
            .col_int("y")
            .col_int("dx")
            .col_int("dy")
            .orderby(&[strat("Int"), seq("frame")])
    });
    p.rule("move-right", ship, move |ctx, s| {
        if s.int(1) < 400 {
            ctx.put(Tuple::new(
                ship,
                vec![
                    Value::Int(s.int(0) + 1),
                    Value::Int(s.int(1) + 150),
                    Value::Int(s.int(2)),
                    Value::Int(s.int(3)),
                    Value::Int(s.int(4)),
                ],
            ));
        }
    });
    p.put(Tuple::new(
        ship,
        vec![
            Value::Int(0),
            Value::Int(10),
            Value::Int(10),
            Value::Int(150),
            Value::Int(0),
        ],
    ));
    Arc::new(p.build().unwrap())
}

#[test]
fn ship_moves_until_bound_sequential() {
    let prog = ship_program();
    let mut eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
    let report = eng.run().unwrap();
    // Frames 0..=3: x = 10, 160, 310, 460 (460 >= 400 stops the rule).
    let ship = prog.table_id("Ship").unwrap();
    let all = eng.gamma().collect(&Query::on(ship));
    assert_eq!(all.len(), 4);
    let mut xs: Vec<i64> = all.iter().map(|t| t.int(1)).collect();
    xs.sort();
    assert_eq!(xs, vec![10, 160, 310, 460]);
    assert_eq!(report.steps, 4);
}

#[test]
fn parallel_and_sequential_agree() {
    let prog = ship_program();
    let ship = prog.table_id("Ship").unwrap();
    let mut seq_eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
    seq_eng.run().unwrap();
    let mut par_eng = Engine::new(Arc::clone(&prog), EngineConfig::parallel(4));
    par_eng.run().unwrap();
    let mut a = seq_eng.gamma().collect(&Query::on(ship));
    let mut b = par_eng.gamma().collect(&Query::on(ship));
    a.sort();
    b.sort();
    assert_eq!(a, b, "deterministic output independent of strategy");
}

#[test]
fn pipeline_depths_agree() {
    // The pipelined coordinator must be observationally identical to the
    // alternating loop (the prop tests in tests/prop_engine.rs cover
    // random programs; this is the smoke check).
    let prog = ship_program();
    let ship = prog.table_id("Ship").unwrap();
    let mut off = Engine::new(
        Arc::clone(&prog),
        EngineConfig::parallel(4).pipeline_depth(0),
    );
    let off_report = off.run().unwrap();
    let mut on = Engine::new(
        Arc::clone(&prog),
        EngineConfig::parallel(4)
            .pipeline_depth(1)
            .inline_classes_up_to(0)
            .parallel_merge_from(1),
    );
    let on_report = on.run().unwrap();
    let mut a = off.gamma().collect(&Query::on(ship));
    let mut b = on.gamma().collect(&Query::on(ship));
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(off_report.tuples_processed, on_report.tuples_processed);
    assert_eq!(off_report.steps, on_report.steps);
}

#[test]
fn unpipelined_runs_report_zero_overlap() {
    let prog = ship_program();
    let mut eng = Engine::new(
        Arc::clone(&prog),
        EngineConfig::parallel(2).pipeline_depth(0).record_steps(),
    );
    let report = eng.run().unwrap();
    assert_eq!(report.overlap_time, std::time::Duration::ZERO);
    assert_eq!(report.overlap_fraction(), 0.0);
}

#[test]
fn pipeline_depth_is_clamped_and_reported() {
    // A configured depth the ring cannot honour is clamped to
    // MAX_PIPELINE_DEPTH and the *effective* depth lands in the report
    // — the config lie is visible instead of silently downgraded.
    let prog = ship_program();
    for (configured, effective) in [
        (0usize, 0usize),
        (1, 1),
        (4, 4),
        (MAX_PIPELINE_DEPTH, MAX_PIPELINE_DEPTH),
        (MAX_PIPELINE_DEPTH + 1, MAX_PIPELINE_DEPTH),
        (usize::MAX, MAX_PIPELINE_DEPTH),
    ] {
        let mut eng = Engine::new(
            Arc::clone(&prog),
            EngineConfig::parallel(2).pipeline_depth(configured),
        );
        let report = eng.run().unwrap();
        assert_eq!(
            report.pipeline_depth, effective,
            "configured {configured} must run at {effective}"
        );
    }
    // Sequential mode has no pipeline regardless of the setting.
    let mut eng = Engine::new(Arc::clone(&prog), {
        let mut c = EngineConfig::sequential();
        c.pipeline_depth = 4;
        c
    });
    assert_eq!(eng.run().unwrap().pipeline_depth, 0);
}

#[test]
fn lookahead_stays_disarmed_below_depth_two() {
    let prog = ship_program();
    for depth in [0usize, 1] {
        let mut eng = Engine::new(
            Arc::clone(&prog),
            EngineConfig::parallel(4)
                .pipeline_depth(depth)
                .inline_classes_up_to(0)
                .parallel_merge_from(1),
        );
        let report = eng.run().unwrap();
        assert_eq!(report.lookahead_hits, 0, "depth {depth}");
        assert_eq!(report.lookahead_misses, 0, "depth {depth}");
        assert_eq!(report.lookahead_hit_rate(), 0.0, "depth {depth}");
    }
}

#[test]
fn adaptive_overlap_toggle_produces_identical_results() {
    let prog = ship_program();
    let ship = prog.table_id("Ship").unwrap();
    let mut reference: Option<Vec<Tuple>> = None;
    for adaptive in [true, false] {
        let mut eng = Engine::new(
            Arc::clone(&prog),
            EngineConfig::parallel(4)
                .pipeline_depth(2)
                .adaptive_overlap(adaptive)
                .inline_classes_up_to(0)
                .parallel_merge_from(1),
        );
        eng.run().unwrap();
        let mut got = eng.gamma().collect(&Query::on(ship));
        got.sort();
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "controller choice must be unobservable"),
        }
    }
}

#[test]
fn unbounded_rule_hits_step_limit() {
    // §3's first rule: "effectively creates an infinite loop that keeps
    // moving the Ship infinitely far to the right!"
    let mut p = ProgramBuilder::new();
    let ship = p.table("Ship", |b| {
        b.col_int("frame").col_int("x").orderby(&[seq("frame")])
    });
    p.rule("move-unbounded", ship, move |ctx, s| {
        ctx.put(Tuple::new(
            ship,
            vec![Value::Int(s.int(0) + 1), Value::Int(s.int(1) + 150)],
        ));
    });
    p.put(Tuple::new(ship, vec![Value::Int(0), Value::Int(10)]));
    let prog = Arc::new(p.build().unwrap());
    let mut eng = Engine::new(prog, EngineConfig::sequential().max_steps(100));
    let err = eng.run().unwrap_err();
    assert!(err.to_string().contains("step limit"));
}

#[test]
fn causality_violation_is_caught_at_runtime() {
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| b.col_int("time").orderby(&[seq("time")]));
    p.rule("back-in-time", t, move |ctx, tr| {
        ctx.put(Tuple::new(t, vec![Value::Int(tr.int(0) - 1)]));
    });
    p.put(Tuple::new(t, vec![Value::Int(5)]));
    let prog = Arc::new(p.build().unwrap());
    let mut eng = Engine::new(prog, EngineConfig::sequential());
    let err = eng.run().unwrap_err();
    assert!(
        matches!(err, crate::error::JStarError::CausalityViolation { .. }),
        "{err}"
    );
}

#[test]
fn key_violation_detected() {
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| {
        b.col_int("k").col_int("v").key(1).orderby(&[seq("k")])
    });
    p.put(Tuple::new(t, vec![Value::Int(1), Value::Int(10)]));
    p.put(Tuple::new(t, vec![Value::Int(1), Value::Int(20)]));
    let prog = Arc::new(p.build().unwrap());
    let mut eng = Engine::new(prog, EngineConfig::sequential());
    let err = eng.run().unwrap_err();
    assert!(
        matches!(err, crate::error::JStarError::KeyViolation { .. }),
        "{err}"
    );
}

#[test]
fn type_error_detected() {
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| b.col_int("k").orderby(&[seq("k")]));
    p.put(Tuple::new(t, vec![Value::str("not an int")]));
    let prog = Arc::new(p.build().unwrap());
    let mut eng = Engine::new(prog, EngineConfig::sequential());
    let err = eng.run().unwrap_err();
    assert!(matches!(err, crate::error::JStarError::Type(_)), "{err}");
}

#[test]
fn duplicates_trigger_rules_once() {
    let mut p = ProgramBuilder::new();
    let a = p.table("A", |b| b.col_int("t").orderby(&[strat("A"), seq("t")]));
    let b = p.table("B", |bb| bb.col_int("t").orderby(&[strat("B"), seq("t")]));
    p.order(&["A", "B"]);
    p.rule("fan-in", a, move |ctx, tr| {
        // Many A tuples map to the same B tuple (like PvWatts →
        // SumMonth); B's rule must fire once per distinct tuple.
        ctx.put(Tuple::new(b, vec![Value::Int(tr.int(0) / 10)]));
    });
    p.rule("count-b", b, move |ctx, tr| {
        ctx.println(format!("B {}", tr.int(0)));
    });
    for i in 0..30 {
        p.put(Tuple::new(a, vec![Value::Int(i)]));
    }
    let prog = Arc::new(p.build().unwrap());
    let mut eng = Engine::new(prog, EngineConfig::sequential());
    let report = eng.run().unwrap();
    let mut out = report.output;
    out.sort();
    assert_eq!(out, vec!["B 0", "B 1", "B 2"]);
}

#[test]
fn no_delta_fires_rules_inline() {
    let mut p = ProgramBuilder::new();
    let a = p.table("A", |b| b.col_int("t").orderby(&[strat("A"), seq("t")]));
    let b = p.table("B", |bb| bb.col_int("t").orderby(&[strat("B"), seq("t")]));
    p.order(&["A", "B"]);
    p.rule("emit", a, move |ctx, tr| {
        ctx.put(Tuple::new(b, vec![Value::Int(tr.int(0))]));
    });
    p.rule("sink", b, move |ctx, tr| {
        ctx.println(format!("got {}", tr.int(0)));
    });
    p.put(Tuple::new(a, vec![Value::Int(1)]));
    let prog = Arc::new(p.build().unwrap());
    let mut eng = Engine::new(
        Arc::clone(&prog),
        EngineConfig::sequential().no_delta(prog.table_id("B").unwrap()),
    );
    let report = eng.run().unwrap();
    assert_eq!(report.output, vec!["got 1"]);
    // B bypassed the Delta tree entirely.
    let snap = eng.stats().tables[prog.table_id("B").unwrap().index()].snapshot();
    assert_eq!(snap.delta_inserts, 0);
    assert_eq!(snap.gamma_fresh, 1);
}

#[test]
fn no_gamma_tables_are_not_stored() {
    let mut p = ProgramBuilder::new();
    let a = p.table("A", |b| b.col_int("t").orderby(&[seq("t")]));
    p.rule("noop", a, move |_ctx, _t| {});
    p.put(Tuple::new(a, vec![Value::Int(1)]));
    let prog = Arc::new(p.build().unwrap());
    let mut eng = Engine::new(
        Arc::clone(&prog),
        EngineConfig::sequential().no_gamma(prog.table_id("A").unwrap()),
    );
    eng.run().unwrap();
    assert_eq!(eng.gamma().total_len(), 0);
    // The rule still fired.
    let snap = eng.stats().tables[0].snapshot();
    assert_eq!(snap.triggers, 1);
}

#[test]
fn injected_events_trigger_rules() {
    let mut p = ProgramBuilder::new();
    let ev = p.table("Event", |b| b.col_int("t").orderby(&[seq("t")]));
    p.rule("log", ev, move |ctx, t| {
        ctx.println(format!("ev {}", t.int(0)))
    });
    let prog = Arc::new(p.build().unwrap());
    let mut eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
    eng.inject(Tuple::new(ev, vec![Value::Int(9)]));
    let report = eng.run().unwrap();
    assert_eq!(report.output, vec!["ev 9"]);
}

#[test]
fn flat_delta_kind_produces_identical_results() {
    let prog = ship_program();
    let ship = prog.table_id("Ship").unwrap();
    let mut tree_eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
    tree_eng.run().unwrap();
    let mut flat_eng = Engine::new(
        Arc::clone(&prog),
        EngineConfig::sequential().delta_kind(crate::delta::DeltaKind::Flat),
    );
    flat_eng.run().unwrap();
    let mut a = tree_eng.gamma().collect(&Query::on(ship));
    let mut b = flat_eng.gamma().collect(&Query::on(ship));
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn lifetime_hints_discard_old_tuples() {
    let prog = ship_program();
    let ship = prog.table_id("Ship").unwrap();
    // Keep only ships at frame >= 2 — the two-generation idea of §6.6.
    let config = EngineConfig::sequential().lifetime_hint(ship, 1, |t| t.int(0) >= 2);
    let mut eng = Engine::new(Arc::clone(&prog), config);
    eng.run().unwrap();
    let left = eng.gamma().collect(&Query::on(ship));
    assert!(left.len() < 4, "hints discarded early frames: {left:?}");
    assert!(left.iter().all(|t| t.int(0) >= 2));
}

#[test]
fn lifetime_hints_trigger_quiescent_compaction() {
    // Parallel mode uses the reservation-table stores, whose `retain`
    // only tombstones. An aggressive hint + a low threshold must make
    // the maintain phase rebuild the store — and the rebuilt store must
    // answer queries identically.
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| b.col_int("i").orderby(&[seq("i")]));
    p.rule("advance", t, move |ctx, tr| {
        if tr.int(0) < 200 {
            ctx.put(Tuple::new(t, vec![Value::Int(tr.int(0) + 1)]));
        }
    });
    p.put(Tuple::new(t, vec![Value::Int(0)]));
    let prog = Arc::new(p.build().unwrap());
    let config = EngineConfig::parallel(2)
        .compact_tombstones_above(0.3)
        .lifetime_hint(prog.table_id("T").unwrap(), 10, |t| t.int(0) >= 190);
    let mut eng = Engine::new(Arc::clone(&prog), config);
    eng.run().unwrap();
    let snap = eng.stats().tables[0].snapshot();
    assert!(
        snap.compactions > 0,
        "hint-heavy run must compact: {snap:?}"
    );
    let left = eng.gamma().collect(&Query::on(prog.table_id("T").unwrap()));
    assert!(left.iter().all(|t| t.int(0) >= 190));
    assert!(!left.is_empty());
}

#[test]
fn compaction_disabled_above_one() {
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| b.col_int("i").orderby(&[seq("i")]));
    p.rule("advance", t, move |ctx, tr| {
        if tr.int(0) < 100 {
            ctx.put(Tuple::new(t, vec![Value::Int(tr.int(0) + 1)]));
        }
    });
    p.put(Tuple::new(t, vec![Value::Int(0)]));
    let prog = Arc::new(p.build().unwrap());
    let config = EngineConfig::parallel(2)
        .compact_tombstones_above(1.0)
        .lifetime_hint(prog.table_id("T").unwrap(), 5, |t| t.int(0) >= 95);
    let mut eng = Engine::new(Arc::clone(&prog), config);
    eng.run().unwrap();
    assert_eq!(eng.stats().tables[0].snapshot().compactions, 0);
}

#[test]
fn stats_count_puts_and_triggers() {
    let prog = ship_program();
    let mut eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
    eng.run().unwrap();
    let snap = eng.stats().tables[0].snapshot();
    assert_eq!(snap.puts, 4, "initial + 3 rule puts");
    assert_eq!(snap.gamma_fresh, 4);
    assert_eq!(snap.triggers, 4);
}
