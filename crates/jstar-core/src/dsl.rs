//! Declarative macros giving JStar's concise surface syntax (§1.1).
//!
//! The paper's first design goal is concision: "a concise one-line
//! notation for defining relational tables". The **item form** of
//! [`crate::jstar_table!`] turns that one line into the full typed façade — a
//! Rust struct, its [`crate::relation::Relation`] impl, and a
//! [`crate::relation::Field`] token per column — so rules and queries
//! are written against named, compile-time-checked fields:
//!
//! ```
//! use jstar_core::prelude::*;
//!
//! jstar_core::jstar_table! {
//!     /// table Ship(int frame -> int x, int y, int dx, int dy)
//!     ///   orderby (Int, seq frame)           — §3's declaration.
//!     #[derive(Copy, Eq)]
//!     pub Ship(int frame -> int x, int y, int dx, int dy)
//!         orderby (Int, seq frame)
//! }
//!
//! let mut p = ProgramBuilder::new();
//! let ship = p.relation::<Ship>();
//! p.rule_rel("move", |ctx, s: Ship| {
//!     if s.x < 400 {
//!         ctx.put_rel(Ship { frame: s.frame + 1, x: s.x + 150, ..s });
//!     }
//! });
//! p.put_rel(Ship { frame: 0, x: 10, y: 10, dx: 150, dy: 0 });
//! let program = std::sync::Arc::new(p.build().unwrap());
//! let mut engine = Engine::new(program, EngineConfig::sequential());
//! engine.run().unwrap();
//! // Typed queries: field/type mismatches are compile errors.
//! let far = engine.collect_rel(Ship::query().ge(Ship::x, 400));
//! assert_eq!(far.len(), 1);
//! # let _ = ship;
//! ```
//!
//! The **expression form** is the positional escape hatch: it declares
//! the table on a builder and returns only the
//! [`crate::schema::TableId`], for generic tooling that manipulates
//! schemas it does not know at compile time:
//!
//! ```
//! use jstar_core::prelude::*;
//! use jstar_core::{jstar_order, jstar_table};
//!
//! let mut p = ProgramBuilder::new();
//! let ship = jstar_table!(p, Ship(int frame -> int x, int y, int dx, int dy)
//!     orderby (Int, seq frame));
//! // order Req < PvWatts < SumMonth
//! jstar_order!(p, Int < Later);
//! # let _ = ship;
//! ```
//!
//! Column types are `int`, `double`, `String`, `boolean` (the paper's Java
//! surface types), mapped to `i64`, `f64`, `Arc<str>`, `bool` struct
//! fields; `->` marks the primary-key split; orderby items are capitalised
//! stratum literals, `seq field`, or `par field`. Attributes written
//! before the declaration (doc comments, extra `#[derive(...)]`s such as
//! `Copy` or `Eq` for all-scalar tables) are passed through to the
//! generated struct, which always derives `Debug`, `Clone`, `PartialEq`.
//!
//! For structs that already exist — domain types with their own methods,
//! derives or invariants, which `jstar_table!` cannot generate —
//! [`crate::relation!`] implements the same typed façade (the
//! [`crate::relation::Relation`] impl plus the `Field` tokens) *onto*
//! the hand-written struct, from the same column notation.

/// Declares a table using the paper's
/// `table Name(type col, ... -> type col, ...) orderby (...)` notation.
///
/// * **Item form** (`jstar_table! { pub Name(...) orderby (...) }`):
///   expands to the struct `Name`, its [`crate::relation::Relation`]
///   impl and one [`crate::relation::Field`] constant per column
///   (`Name::col`). Register it with
///   [`crate::program::ProgramBuilder::relation`].
/// * **Expression form** (`jstar_table!(builder, Name(...) orderby (...))`):
///   declares the table on the builder and returns the
///   [`crate::schema::TableId`] — the positional escape hatch.
///
/// See the [module docs](crate::dsl) for a worked example of both.
#[macro_export]
macro_rules! jstar_table {
    // ── Item form: emit struct + Relation impl + Field tokens. ──────
    ($(#[$meta:meta])* $vis:vis $name:ident ( $($cols:tt)* ) orderby ( $($ob:tt)* )) => {
        $crate::jstar_table!(@item [$(#[$meta])*] [$vis] $name; []; (none); 0usize; [$($ob)*]; $($cols)*);
    };
    ($(#[$meta:meta])* $vis:vis $name:ident ( $($cols:tt)* )) => {
        $crate::jstar_table!(@item [$(#[$meta])*] [$vis] $name; []; (none); 0usize; []; $($cols)*);
    };

    // ── Expression form: declare on a builder, return the TableId. ──
    ($p:expr, $name:ident ( $($cols:tt)* ) orderby ( $($ob:tt)* )) => {
        $p.table(stringify!($name), |b| {
            let b = $crate::jstar_table!(@cols b, 0usize; $($cols)*);
            b.orderby(&$crate::jstar_table!(@ob $($ob)*))
        })
    };
    ($p:expr, $name:ident ( $($cols:tt)* )) => {
        $p.table(stringify!($name), |b| {
            $crate::jstar_table!(@cols b, 0usize; $($cols)*)
        })
    };

    // Column munchers. The counter tracks how many columns precede `->`.
    (@cols $b:expr, $k:expr; ) => { $b };
    (@cols $b:expr, $k:expr; int $n:ident) => { $b.col_int(stringify!($n)) };
    (@cols $b:expr, $k:expr; double $n:ident) => { $b.col_double(stringify!($n)) };
    (@cols $b:expr, $k:expr; String $n:ident) => { $b.col_str(stringify!($n)) };
    (@cols $b:expr, $k:expr; boolean $n:ident) => { $b.col_bool(stringify!($n)) };
    (@cols $b:expr, $k:expr; int $n:ident , $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_int(stringify!($n)), $k + 1; $($rest)*)
    };
    (@cols $b:expr, $k:expr; double $n:ident , $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_double(stringify!($n)), $k + 1; $($rest)*)
    };
    (@cols $b:expr, $k:expr; String $n:ident , $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_str(stringify!($n)), $k + 1; $($rest)*)
    };
    (@cols $b:expr, $k:expr; boolean $n:ident , $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_bool(stringify!($n)), $k + 1; $($rest)*)
    };
    (@cols $b:expr, $k:expr; int $n:ident -> $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_int(stringify!($n)).key($k + 1), $k + 1; $($rest)*)
    };
    (@cols $b:expr, $k:expr; double $n:ident -> $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_double(stringify!($n)).key($k + 1), $k + 1; $($rest)*)
    };
    (@cols $b:expr, $k:expr; String $n:ident -> $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_str(stringify!($n)).key($k + 1), $k + 1; $($rest)*)
    };
    (@cols $b:expr, $k:expr; boolean $n:ident -> $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_bool(stringify!($n)).key($k + 1), $k + 1; $($rest)*)
    };

    // Orderby list: accumulate component expressions, then emit one
    // `vec![...]` literal.
    (@ob $($items:tt)*) => {
        $crate::jstar_table!(@oblist [] $($items)*)
    };
    (@oblist [$($acc:expr,)*] ) => {
        ::std::vec![$($acc),*]
    };
    (@oblist [$($acc:expr,)*] seq $f:ident $(, $($rest:tt)*)?) => {
        $crate::jstar_table!(@oblist [$($acc,)* $crate::orderby::seq(stringify!($f)),] $($($rest)*)?)
    };
    (@oblist [$($acc:expr,)*] par $f:ident $(, $($rest:tt)*)?) => {
        $crate::jstar_table!(@oblist [$($acc,)* $crate::orderby::par(stringify!($f)),] $($($rest)*)?)
    };
    (@oblist [$($acc:expr,)*] $lit:ident $(, $($rest:tt)*)?) => {
        $crate::jstar_table!(@oblist [$($acc,)* $crate::orderby::strat(stringify!($lit)),] $($($rest)*)?)
    };

    // Item-form column munchers: accumulate `($idx, $name, RustType,
    // ValueTypeVariant)` per column, tracking the `->` key split, then
    // emit the struct and impls in one final step.
    (@item $m:tt $v:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; ) => {
        $crate::jstar_table!(@emit $m $v $name; [$($acc)*]; $key; $ob);
    };
    (@item $m:tt $v:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; int $n:ident) => {
        $crate::jstar_table!(@emit $m $v $name; [$($acc)* ($idx, $n, i64, Int)]; $key; $ob);
    };
    (@item $m:tt $v:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; double $n:ident) => {
        $crate::jstar_table!(@emit $m $v $name; [$($acc)* ($idx, $n, f64, Double)]; $key; $ob);
    };
    (@item $m:tt $v:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; String $n:ident) => {
        $crate::jstar_table!(@emit $m $v $name; [$($acc)* ($idx, $n, ::std::sync::Arc<str>, Str)]; $key; $ob);
    };
    (@item $m:tt $v:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; boolean $n:ident) => {
        $crate::jstar_table!(@emit $m $v $name; [$($acc)* ($idx, $n, bool, Bool)]; $key; $ob);
    };
    (@item $m:tt $v:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; int $n:ident , $($rest:tt)*) => {
        $crate::jstar_table!(@item $m $v $name; [$($acc)* ($idx, $n, i64, Int)]; $key; $idx + 1usize; $ob; $($rest)*);
    };
    (@item $m:tt $v:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; double $n:ident , $($rest:tt)*) => {
        $crate::jstar_table!(@item $m $v $name; [$($acc)* ($idx, $n, f64, Double)]; $key; $idx + 1usize; $ob; $($rest)*);
    };
    (@item $m:tt $v:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; String $n:ident , $($rest:tt)*) => {
        $crate::jstar_table!(@item $m $v $name; [$($acc)* ($idx, $n, ::std::sync::Arc<str>, Str)]; $key; $idx + 1usize; $ob; $($rest)*);
    };
    (@item $m:tt $v:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; boolean $n:ident , $($rest:tt)*) => {
        $crate::jstar_table!(@item $m $v $name; [$($acc)* ($idx, $n, bool, Bool)]; $key; $idx + 1usize; $ob; $($rest)*);
    };
    (@item $m:tt $v:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; int $n:ident -> $($rest:tt)*) => {
        $crate::jstar_table!(@item $m $v $name; [$($acc)* ($idx, $n, i64, Int)]; (some ($idx + 1usize)); $idx + 1usize; $ob; $($rest)*);
    };
    (@item $m:tt $v:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; double $n:ident -> $($rest:tt)*) => {
        $crate::jstar_table!(@item $m $v $name; [$($acc)* ($idx, $n, f64, Double)]; (some ($idx + 1usize)); $idx + 1usize; $ob; $($rest)*);
    };
    (@item $m:tt $v:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; String $n:ident -> $($rest:tt)*) => {
        $crate::jstar_table!(@item $m $v $name; [$($acc)* ($idx, $n, ::std::sync::Arc<str>, Str)]; (some ($idx + 1usize)); $idx + 1usize; $ob; $($rest)*);
    };
    (@item $m:tt $v:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; boolean $n:ident -> $($rest:tt)*) => {
        $crate::jstar_table!(@item $m $v $name; [$($acc)* ($idx, $n, bool, Bool)]; (some ($idx + 1usize)); $idx + 1usize; $ob; $($rest)*);
    };

    (@key (none)) => { ::core::option::Option::None };
    (@key (some $k:expr)) => { ::core::option::Option::Some($k) };

    // Final item-form expansion: the struct, its Relation impl, and one
    // Field token per column.
    (@emit [$($meta:tt)*] [$vis:vis] $name:ident;
        [$( ($idx:expr, $n:ident, $rty:ty, $vt:ident) )*]; $key:tt; [$($ob:tt)*]) => {
        $($meta)*
        #[derive(Debug, Clone, PartialEq)]
        $vis struct $name {
            $( pub $n: $rty, )*
        }

        impl $crate::relation::Relation for $name {
            const NAME: &'static str = ::core::stringify!($name);
            const COLUMNS: &'static [$crate::relation::ColumnSpec] = &[
                $( $crate::relation::ColumnSpec {
                    name: ::core::stringify!($n),
                    ty: $crate::value::ValueType::$vt,
                }, )*
            ];
            const KEY_ARITY: ::core::option::Option<usize> = $crate::jstar_table!(@key $key);

            fn orderby() -> ::std::vec::Vec<$crate::orderby::OrderComponent> {
                $crate::jstar_table!(@ob $($ob)*)
            }

            fn from_tuple(t: &$crate::tuple::Tuple) -> Self {
                $name {
                    $( $n: $crate::relation::FieldValue::from_value(t.get($idx)), )*
                }
            }

            fn into_values(self) -> ::std::vec::Vec<$crate::value::Value> {
                ::std::vec![ $( $crate::relation::FieldValue::into_value(self.$n), )* ]
            }
        }

        #[allow(non_upper_case_globals)]
        impl $name {
            $(
                #[doc = ::core::concat!(
                    "Typed field token for column `", ::core::stringify!($n), "`."
                )]
                pub const $n: $crate::relation::Field<$name, $rty> =
                    $crate::relation::Field::new($idx, ::core::stringify!($n));
            )*
        }
    };
}

/// Declares an order chain on a [`crate::program::ProgramBuilder`] using
/// the paper's `order A < B < C` notation.
#[macro_export]
macro_rules! jstar_order {
    ($p:expr, $first:ident $(< $rest:ident)*) => {
        $p.order(&[stringify!($first) $(, stringify!($rest))*])
    };
}

/// Implements [`crate::relation::Relation`] (plus per-column
/// [`crate::relation::Field`] tokens) for an **existing** hand-written
/// struct — the typed-façade entry point for apps that wrap domain
/// types and therefore cannot let [`crate::jstar_table!`] generate the
/// struct for them.
///
/// The column list uses the paper's declaration notation (the same
/// grammar as `jstar_table!`, including the `->` key split and the
/// `orderby (...)` clause); every struct field must appear as a column
/// with the matching Rust type (`int` → `i64`, `double` → `f64`,
/// `String` → `Arc<str>`, `boolean` → `bool`) — a missing or mistyped
/// field is a compile error in the generated `from_tuple`. By default
/// the table is named after the struct; `as "Name"` maps the struct
/// onto a table declared under a different name (e.g. a decode-side
/// view of a table that another relation owns).
///
/// ```
/// use jstar_core::prelude::*;
///
/// /// Hand-written: carries domain methods `jstar_table!` could not emit.
/// #[derive(Debug, Clone, PartialEq)]
/// pub struct Reading {
///     pub id: i64,
///     pub value: f64,
/// }
/// impl Reading {
///     pub fn is_anomalous(&self) -> bool {
///         self.value.abs() > 100.0
///     }
/// }
///
/// jstar_core::relation! {
///     Reading(int id -> double value) orderby (Int, seq id)
/// }
///
/// let mut p = ProgramBuilder::new();
/// let _readings = p.relation::<Reading>();
/// p.put_rel(Reading { id: 0, value: 150.0 });
/// let program = std::sync::Arc::new(p.build().unwrap());
/// let mut engine = Engine::new(program, EngineConfig::sequential());
/// engine.run().unwrap();
/// let anomalies = engine
///     .collect_rel(Reading::query().gt(Reading::value, 100.0))
///     .into_iter()
///     .filter(Reading::is_anomalous)
///     .count();
/// assert_eq!(anomalies, 1);
/// ```
#[macro_export]
macro_rules! relation {
    // ── Entry points: optional `as "Table"` × optional orderby. ─────
    ($name:ident as $table:literal ( $($cols:tt)* ) orderby ( $($ob:tt)* )) => {
        $crate::relation!(@item [$table] $name; []; (none); 0usize; [$($ob)*]; $($cols)*);
    };
    ($name:ident as $table:literal ( $($cols:tt)* )) => {
        $crate::relation!(@item [$table] $name; []; (none); 0usize; []; $($cols)*);
    };
    ($name:ident ( $($cols:tt)* ) orderby ( $($ob:tt)* )) => {
        $crate::relation!(@item [] $name; []; (none); 0usize; [$($ob)*]; $($cols)*);
    };
    ($name:ident ( $($cols:tt)* )) => {
        $crate::relation!(@item [] $name; []; (none); 0usize; []; $($cols)*);
    };

    // Column munchers: accumulate `($idx, $name, RustType,
    // ValueTypeVariant)` per column, tracking the `->` key split —
    // the same accumulation as `jstar_table!`'s item form, minus the
    // struct emission at the end.
    (@item $t:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; ) => {
        $crate::relation!(@emit $t $name; [$($acc)*]; $key; $ob);
    };
    (@item $t:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; int $n:ident) => {
        $crate::relation!(@emit $t $name; [$($acc)* ($idx, $n, i64, Int)]; $key; $ob);
    };
    (@item $t:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; double $n:ident) => {
        $crate::relation!(@emit $t $name; [$($acc)* ($idx, $n, f64, Double)]; $key; $ob);
    };
    (@item $t:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; String $n:ident) => {
        $crate::relation!(@emit $t $name; [$($acc)* ($idx, $n, ::std::sync::Arc<str>, Str)]; $key; $ob);
    };
    (@item $t:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; boolean $n:ident) => {
        $crate::relation!(@emit $t $name; [$($acc)* ($idx, $n, bool, Bool)]; $key; $ob);
    };
    (@item $t:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; int $n:ident , $($rest:tt)*) => {
        $crate::relation!(@item $t $name; [$($acc)* ($idx, $n, i64, Int)]; $key; $idx + 1usize; $ob; $($rest)*);
    };
    (@item $t:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; double $n:ident , $($rest:tt)*) => {
        $crate::relation!(@item $t $name; [$($acc)* ($idx, $n, f64, Double)]; $key; $idx + 1usize; $ob; $($rest)*);
    };
    (@item $t:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; String $n:ident , $($rest:tt)*) => {
        $crate::relation!(@item $t $name; [$($acc)* ($idx, $n, ::std::sync::Arc<str>, Str)]; $key; $idx + 1usize; $ob; $($rest)*);
    };
    (@item $t:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; boolean $n:ident , $($rest:tt)*) => {
        $crate::relation!(@item $t $name; [$($acc)* ($idx, $n, bool, Bool)]; $key; $idx + 1usize; $ob; $($rest)*);
    };
    (@item $t:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; int $n:ident -> $($rest:tt)*) => {
        $crate::relation!(@item $t $name; [$($acc)* ($idx, $n, i64, Int)]; (some ($idx + 1usize)); $idx + 1usize; $ob; $($rest)*);
    };
    (@item $t:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; double $n:ident -> $($rest:tt)*) => {
        $crate::relation!(@item $t $name; [$($acc)* ($idx, $n, f64, Double)]; (some ($idx + 1usize)); $idx + 1usize; $ob; $($rest)*);
    };
    (@item $t:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; String $n:ident -> $($rest:tt)*) => {
        $crate::relation!(@item $t $name; [$($acc)* ($idx, $n, ::std::sync::Arc<str>, Str)]; (some ($idx + 1usize)); $idx + 1usize; $ob; $($rest)*);
    };
    (@item $t:tt $name:ident; [$($acc:tt)*]; $key:tt; $idx:expr; $ob:tt; boolean $n:ident -> $($rest:tt)*) => {
        $crate::relation!(@item $t $name; [$($acc)* ($idx, $n, bool, Bool)]; (some ($idx + 1usize)); $idx + 1usize; $ob; $($rest)*);
    };

    (@name $name:ident) => { ::core::stringify!($name) };
    (@name $name:ident $table:literal) => { $table };

    // Final expansion: the Relation impl and one Field token per
    // column, attached to the caller's pre-existing struct.
    (@emit [$($table:literal)?] $name:ident;
        [$( ($idx:expr, $n:ident, $rty:ty, $vt:ident) )*]; $key:tt; [$($ob:tt)*]) => {
        impl $crate::relation::Relation for $name {
            const NAME: &'static str = $crate::relation!(@name $name $($table)?);
            const COLUMNS: &'static [$crate::relation::ColumnSpec] = &[
                $( $crate::relation::ColumnSpec {
                    name: ::core::stringify!($n),
                    ty: $crate::value::ValueType::$vt,
                }, )*
            ];
            const KEY_ARITY: ::core::option::Option<usize> = $crate::jstar_table!(@key $key);

            fn orderby() -> ::std::vec::Vec<$crate::orderby::OrderComponent> {
                $crate::jstar_table!(@ob $($ob)*)
            }

            fn from_tuple(t: &$crate::tuple::Tuple) -> Self {
                $name {
                    $( $n: $crate::relation::FieldValue::from_value(t.get($idx)), )*
                }
            }

            fn into_values(self) -> ::std::vec::Vec<$crate::value::Value> {
                ::std::vec![ $( $crate::relation::FieldValue::into_value(self.$n), )* ]
            }
        }

        #[allow(non_upper_case_globals)]
        impl $name {
            $(
                #[doc = ::core::concat!(
                    "Typed field token for column `", ::core::stringify!($n), "`."
                )]
                pub const $n: $crate::relation::Field<$name, $rty> =
                    $crate::relation::Field::new($idx, ::core::stringify!($n));
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::orderby::OrderComponent;
    use crate::prelude::*;

    #[test]
    fn ship_declaration_matches_builder_form() {
        // table Ship(int frame -> int x, int y, int dx, int dy)
        //   orderby (Int, seq frame)           — §3's declaration.
        let mut p = ProgramBuilder::new();
        let ship = jstar_table!(p, Ship(int frame -> int x, int y, int dx, int dy)
            orderby (Int, seq frame));
        let prog = p.build().unwrap();
        let def = prog.def(ship);
        assert_eq!(def.name, "Ship");
        assert_eq!(def.arity(), 5);
        assert_eq!(def.key_arity, Some(1));
        assert_eq!(def.orderby, vec![strat("Int"), seq("frame")]);
    }

    #[test]
    fn fig5_estimate_and_done() {
        // Fig. 5's tables, near-verbatim.
        let mut p = ProgramBuilder::new();
        let _vertex = jstar_table!(p, Vertex(int index, String name) orderby (Vertex));
        let _edge = jstar_table!(p, Edge(int from, int to, int value) orderby (Edge));
        let estimate = jstar_table!(p, Estimate(int vertex, int distance)
            orderby (Int, seq distance, Estimate));
        let done = jstar_table!(p, Done(int vertex -> int distance)
            orderby (Int, seq distance, Done));
        jstar_order!(p, Vertex < Edge < Int);
        jstar_order!(p, Estimate < Done);
        let prog = p.build().unwrap();
        assert_eq!(prog.def(done).key_arity, Some(1));
        assert_eq!(prog.def(estimate).orderby.len(), 3);
        let sa = prog.strata().lookup("Estimate").unwrap();
        let sb = prog.strata().lookup("Done").unwrap();
        assert!(prog.strata().declared_lt(sa, sb));
    }

    #[test]
    fn multi_column_key_and_par() {
        // table Data(int iter, int index -> double value)
        //   orderby (Int, seq iter, Data, seq index)   — §6.6's table.
        let mut p = ProgramBuilder::new();
        let data = jstar_table!(p, Data(int iter, int index -> double value)
            orderby (Int, seq iter, Data, seq index));
        let row = jstar_table!(p, RowRequest(int row) orderby (Row, par row));
        let prog = p.build().unwrap();
        assert_eq!(prog.def(data).key_arity, Some(2));
        assert_eq!(prog.def(data).columns[2].ty, ValueType::Double);
        assert_eq!(
            prog.def(row).orderby,
            vec![strat("Row"), OrderComponent::Par("row".into())]
        );
    }

    #[test]
    fn table_without_orderby() {
        let mut p = ProgramBuilder::new();
        let t = jstar_table!(p, Plain(String name, boolean flag));
        let prog = p.build().unwrap();
        assert_eq!(prog.def(t).orderby.len(), 0);
        assert_eq!(prog.def(t).columns[1].ty, ValueType::Bool);
        assert_eq!(prog.def(t).key_arity, None);
    }

    #[test]
    fn macro_program_runs_end_to_end() {
        let mut p = ProgramBuilder::new();
        let ship = jstar_table!(p, Ship(int frame -> int x)
            orderby (Int, seq frame));
        p.rule("move", ship, move |ctx, s| {
            if s.int(1) < 400 {
                ctx.put(Tuple::new(
                    ship,
                    vec![Value::Int(s.int(0) + 1), Value::Int(s.int(1) + 150)],
                ));
            }
        });
        p.put(Tuple::new(ship, vec![Value::Int(0), Value::Int(10)]));
        let prog = std::sync::Arc::new(p.build().unwrap());
        let mut engine = Engine::new(prog, EngineConfig::sequential());
        engine.run().unwrap();
        assert_eq!(engine.gamma().collect(&Query::on(ship)).len(), 4);
    }
}
