//! Declarative macros giving JStar's concise surface syntax (§1.1).
//!
//! The paper's first design goal is concision: "a concise one-line
//! notation for defining relational tables". These macros let table and
//! order declarations be written almost verbatim from the paper:
//!
//! ```
//! use jstar_core::prelude::*;
//! use jstar_core::{jstar_order, jstar_table};
//!
//! let mut p = ProgramBuilder::new();
//! // table Ship(int frame -> int x, int y, int dx, int dy)
//! //   orderby (Int, seq frame)
//! let ship = jstar_table!(p, Ship(int frame -> int x, int y, int dx, int dy)
//!     orderby (Int, seq frame));
//! // order Req < PvWatts < SumMonth
//! jstar_order!(p, Int < Later);
//! # let _ = ship;
//! ```
//!
//! Column types are `int`, `double`, `String`, `boolean` (the paper's Java
//! surface types); `->` marks the primary-key split; orderby items are
//! capitalised stratum literals, `seq field`, or `par field`.

/// Declares a table on a [`crate::program::ProgramBuilder`] using the
/// paper's `table Name(type col, ... -> type col, ...) orderby (...)`
/// notation. Returns the [`crate::schema::TableId`].
#[macro_export]
macro_rules! jstar_table {
    // Entry point.
    ($p:expr, $name:ident ( $($cols:tt)* ) orderby ( $($ob:tt)* )) => {
        $p.table(stringify!($name), |b| {
            let b = $crate::jstar_table!(@cols b, 0usize; $($cols)*);
            b.orderby(&$crate::jstar_table!(@ob $($ob)*))
        })
    };
    ($p:expr, $name:ident ( $($cols:tt)* )) => {
        $p.table(stringify!($name), |b| {
            $crate::jstar_table!(@cols b, 0usize; $($cols)*)
        })
    };

    // Column munchers. The counter tracks how many columns precede `->`.
    (@cols $b:expr, $k:expr; ) => { $b };
    (@cols $b:expr, $k:expr; int $n:ident) => { $b.col_int(stringify!($n)) };
    (@cols $b:expr, $k:expr; double $n:ident) => { $b.col_double(stringify!($n)) };
    (@cols $b:expr, $k:expr; String $n:ident) => { $b.col_str(stringify!($n)) };
    (@cols $b:expr, $k:expr; boolean $n:ident) => { $b.col_bool(stringify!($n)) };
    (@cols $b:expr, $k:expr; int $n:ident , $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_int(stringify!($n)), $k + 1; $($rest)*)
    };
    (@cols $b:expr, $k:expr; double $n:ident , $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_double(stringify!($n)), $k + 1; $($rest)*)
    };
    (@cols $b:expr, $k:expr; String $n:ident , $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_str(stringify!($n)), $k + 1; $($rest)*)
    };
    (@cols $b:expr, $k:expr; boolean $n:ident , $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_bool(stringify!($n)), $k + 1; $($rest)*)
    };
    (@cols $b:expr, $k:expr; int $n:ident -> $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_int(stringify!($n)).key($k + 1), $k + 1; $($rest)*)
    };
    (@cols $b:expr, $k:expr; double $n:ident -> $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_double(stringify!($n)).key($k + 1), $k + 1; $($rest)*)
    };
    (@cols $b:expr, $k:expr; String $n:ident -> $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_str(stringify!($n)).key($k + 1), $k + 1; $($rest)*)
    };
    (@cols $b:expr, $k:expr; boolean $n:ident -> $($rest:tt)*) => {
        $crate::jstar_table!(@cols $b.col_bool(stringify!($n)).key($k + 1), $k + 1; $($rest)*)
    };

    // Orderby list: accumulate component expressions, then emit one
    // `vec![...]` literal.
    (@ob $($items:tt)*) => {
        $crate::jstar_table!(@oblist [] $($items)*)
    };
    (@oblist [$($acc:expr,)*] ) => {
        ::std::vec![$($acc),*]
    };
    (@oblist [$($acc:expr,)*] seq $f:ident $(, $($rest:tt)*)?) => {
        $crate::jstar_table!(@oblist [$($acc,)* $crate::orderby::seq(stringify!($f)),] $($($rest)*)?)
    };
    (@oblist [$($acc:expr,)*] par $f:ident $(, $($rest:tt)*)?) => {
        $crate::jstar_table!(@oblist [$($acc,)* $crate::orderby::par(stringify!($f)),] $($($rest)*)?)
    };
    (@oblist [$($acc:expr,)*] $lit:ident $(, $($rest:tt)*)?) => {
        $crate::jstar_table!(@oblist [$($acc,)* $crate::orderby::strat(stringify!($lit)),] $($($rest)*)?)
    };
}

/// Declares an order chain on a [`crate::program::ProgramBuilder`] using
/// the paper's `order A < B < C` notation.
#[macro_export]
macro_rules! jstar_order {
    ($p:expr, $first:ident $(< $rest:ident)*) => {
        $p.order(&[stringify!($first) $(, stringify!($rest))*])
    };
}

#[cfg(test)]
mod tests {
    use crate::orderby::OrderComponent;
    use crate::prelude::*;

    #[test]
    fn ship_declaration_matches_builder_form() {
        // table Ship(int frame -> int x, int y, int dx, int dy)
        //   orderby (Int, seq frame)           — §3's declaration.
        let mut p = ProgramBuilder::new();
        let ship = jstar_table!(p, Ship(int frame -> int x, int y, int dx, int dy)
            orderby (Int, seq frame));
        let prog = p.build().unwrap();
        let def = prog.def(ship);
        assert_eq!(def.name, "Ship");
        assert_eq!(def.arity(), 5);
        assert_eq!(def.key_arity, Some(1));
        assert_eq!(def.orderby, vec![strat("Int"), seq("frame")]);
    }

    #[test]
    fn fig5_estimate_and_done() {
        // Fig. 5's tables, near-verbatim.
        let mut p = ProgramBuilder::new();
        let _vertex = jstar_table!(p, Vertex(int index, String name) orderby (Vertex));
        let _edge = jstar_table!(p, Edge(int from, int to, int value) orderby (Edge));
        let estimate = jstar_table!(p, Estimate(int vertex, int distance)
            orderby (Int, seq distance, Estimate));
        let done = jstar_table!(p, Done(int vertex -> int distance)
            orderby (Int, seq distance, Done));
        jstar_order!(p, Vertex < Edge < Int);
        jstar_order!(p, Estimate < Done);
        let prog = p.build().unwrap();
        assert_eq!(prog.def(done).key_arity, Some(1));
        assert_eq!(prog.def(estimate).orderby.len(), 3);
        let sa = prog.strata().lookup("Estimate").unwrap();
        let sb = prog.strata().lookup("Done").unwrap();
        assert!(prog.strata().declared_lt(sa, sb));
    }

    #[test]
    fn multi_column_key_and_par() {
        // table Data(int iter, int index -> double value)
        //   orderby (Int, seq iter, Data, seq index)   — §6.6's table.
        let mut p = ProgramBuilder::new();
        let data = jstar_table!(p, Data(int iter, int index -> double value)
            orderby (Int, seq iter, Data, seq index));
        let row = jstar_table!(p, RowRequest(int row) orderby (Row, par row));
        let prog = p.build().unwrap();
        assert_eq!(prog.def(data).key_arity, Some(2));
        assert_eq!(prog.def(data).columns[2].ty, ValueType::Double);
        assert_eq!(
            prog.def(row).orderby,
            vec![strat("Row"), OrderComponent::Par("row".into())]
        );
    }

    #[test]
    fn table_without_orderby() {
        let mut p = ProgramBuilder::new();
        let t = jstar_table!(p, Plain(String name, boolean flag));
        let prog = p.build().unwrap();
        assert_eq!(prog.def(t).orderby.len(), 0);
        assert_eq!(prog.def(t).columns[1].ty, ValueType::Bool);
        assert_eq!(prog.def(t).key_arity, None);
    }

    #[test]
    fn macro_program_runs_end_to_end() {
        let mut p = ProgramBuilder::new();
        let ship = jstar_table!(p, Ship(int frame -> int x)
            orderby (Int, seq frame));
        p.rule("move", ship, move |ctx, s| {
            if s.int(1) < 400 {
                ctx.put(Tuple::new(
                    ship,
                    vec![Value::Int(s.int(0) + 1), Value::Int(s.int(1) + 150)],
                ));
            }
        });
        p.put(Tuple::new(ship, vec![Value::Int(0), Value::Int(10)]));
        let prog = std::sync::Arc::new(p.build().unwrap());
        let mut engine = Engine::new(prog, EngineConfig::sequential());
        engine.run().unwrap();
        assert_eq!(engine.gamma().collect(&Query::on(ship)).len(), 4);
    }
}
