//! Declarative macros giving JStar's concise surface syntax (§1.1).
//!
//! The paper's first design goal is concision: "a concise one-line
//! notation for defining relational tables". The **item form** of
//! [`crate::jstar_table!`] turns that one line into the full typed façade — a
//! Rust struct, its [`crate::relation::Relation`] impl, and a
//! [`crate::relation::Field`] token per column — so rules and queries
//! are written against named, compile-time-checked fields:
//!
//! ```
//! use jstar_core::prelude::*;
//!
//! jstar_core::jstar_table! {
//!     /// table Ship(int frame -> int x, int y, int dx, int dy)
//!     ///   orderby (Int, seq frame)           — §3's declaration.
//!     #[derive(Copy, Eq)]
//!     pub Ship(int frame -> int x, int y, int dx, int dy)
//!         orderby (Int, seq frame)
//! }
//!
//! let mut p = ProgramBuilder::new();
//! let ship = p.relation::<Ship>();
//! p.rule_rel("move", |ctx, s: Ship| {
//!     if s.x < 400 {
//!         ctx.put_rel(Ship { frame: s.frame + 1, x: s.x + 150, ..s });
//!     }
//! });
//! p.put_rel(Ship { frame: 0, x: 10, y: 10, dx: 150, dy: 0 });
//! let program = std::sync::Arc::new(p.build().unwrap());
//! let mut engine = Engine::new(program, EngineConfig::sequential());
//! engine.run().unwrap();
//! // Typed queries: field/type mismatches are compile errors.
//! let far = engine.collect_rel(Ship::query().ge(Ship::x, 400));
//! assert_eq!(far.len(), 1);
//! # let _ = ship;
//! ```
//!
//! The **expression form** is the positional escape hatch: it declares
//! the table on a builder and returns only the
//! [`crate::schema::TableId`], for generic tooling that manipulates
//! schemas it does not know at compile time:
//!
//! ```
//! use jstar_core::prelude::*;
//! use jstar_core::{jstar_order, jstar_table};
//!
//! let mut p = ProgramBuilder::new();
//! let ship = jstar_table!(p, Ship(int frame -> int x, int y, int dx, int dy)
//!     orderby (Int, seq frame));
//! // order Req < PvWatts < SumMonth
//! jstar_order!(p, Int < Later);
//! # let _ = ship;
//! ```
//!
//! Column types are `int`, `double`, `String`, `boolean` (the paper's Java
//! surface types), mapped to `i64`, `f64`, `Arc<str>`, `bool` struct
//! fields; `->` marks the primary-key split; orderby items are capitalised
//! stratum literals, `seq field`, or `par field`. Attributes written
//! before the declaration (doc comments, extra `#[derive(...)]`s such as
//! `Copy` or `Eq` for all-scalar tables) are passed through to the
//! generated struct, which always derives `Debug`, `Clone`, `PartialEq`.
//!
//! For structs that already exist — domain types with their own methods,
//! derives or invariants, which `jstar_table!` cannot generate —
//! [`crate::relation!`] implements the same typed façade (the
//! [`crate::relation::Relation`] impl plus the `Field` tokens) *onto*
//! the hand-written struct, from the same column notation.
//!
//! All three surfaces — `jstar_table!`'s expression form, its item
//! form, and `relation!` — parse the identical column grammar, so the
//! grammar lives in exactly one place: the [`crate::__jstar_columns!`]
//! muncher walks `type name [, | ->]` once, accumulates
//! `(index, name, type)` triples plus the key split, and calls back
//! into the requesting macro, which only renders the result.

/// The shared column muncher behind [`crate::jstar_table!`] and
/// [`crate::relation!`] — **not public API** (the name is `#[doc(hidden)]`
/// and exported only because `macro_rules!` cross-macro calls require
/// it).
///
/// Entry: `__jstar_columns!([callback_macro ctx...]; columns...)`.
/// The muncher walks the paper's `type name` list, counting the `->`
/// primary-key split, and finishes by invoking
/// `$crate::callback_macro!(ctx...; [(idx, name, type)...]; key)`
/// where `key` is `(none)` or `(some arity)`. The `@rust_ty`,
/// `@value_ty`, `@key`, and `@apply_key` helper arms render the
/// accumulated triples for the callbacks.
#[doc(hidden)]
#[macro_export]
macro_rules! __jstar_columns {
    // The recursive arms transcribe to brace-form invocations, which
    // parse both as items (the item-form callers) and as expressions
    // (the builder-form caller).
    ([$($cb:tt)*]; $($cols:tt)*) => {
        $crate::__jstar_columns! { @munch [$($cb)*]; []; (none); 0usize; $($cols)* }
    };

    // The muncher: one arm per way a `type name` pair can end.
    (@munch $cb:tt; $acc:tt; $key:tt; $idx:expr; ) => {
        $crate::__jstar_columns! { @done $cb; $acc; $key }
    };
    (@munch $cb:tt; [$($acc:tt)*]; $key:tt; $idx:expr; $kind:tt $n:ident) => {
        $crate::__jstar_columns! { @done $cb; [$($acc)* ($idx, $n, $kind)]; $key }
    };
    (@munch $cb:tt; [$($acc:tt)*]; $key:tt; $idx:expr; $kind:tt $n:ident , $($rest:tt)*) => {
        $crate::__jstar_columns! { @munch $cb; [$($acc)* ($idx, $n, $kind)]; $key; $idx + 1usize; $($rest)* }
    };
    (@munch $cb:tt; [$($acc:tt)*]; $key:tt; $idx:expr; $kind:tt $n:ident -> $($rest:tt)*) => {
        $crate::__jstar_columns! { @munch $cb; [$($acc)* ($idx, $n, $kind)]; (some ($idx + 1usize)); $idx + 1usize; $($rest)* }
    };
    (@done [$cbmac:ident $($ctx:tt)*]; $acc:tt; $key:tt) => {
        $crate::$cbmac! { $($ctx)*; $acc; $key }
    };

    // Rendering helpers: the paper's surface types and the key split.
    (@rust_ty int) => { i64 };
    (@rust_ty double) => { f64 };
    (@rust_ty String) => { ::std::sync::Arc<str> };
    (@rust_ty boolean) => { bool };
    (@value_ty int) => { $crate::value::ValueType::Int };
    (@value_ty double) => { $crate::value::ValueType::Double };
    (@value_ty String) => { $crate::value::ValueType::Str };
    (@value_ty boolean) => { $crate::value::ValueType::Bool };
    (@key (none)) => { ::core::option::Option::None };
    (@key (some $k:expr)) => { ::core::option::Option::Some($k) };
    (@apply_key (none), $e:expr) => { $e };
    (@apply_key (some $k:expr), $e:expr) => { $e.key($k) };
}

/// Declares a table using the paper's
/// `table Name(type col, ... -> type col, ...) orderby (...)` notation.
///
/// * **Item form** (`jstar_table! { pub Name(...) orderby (...) }`):
///   expands to the struct `Name`, its [`crate::relation::Relation`]
///   impl and one [`crate::relation::Field`] constant per column
///   (`Name::col`). Register it with
///   [`crate::program::ProgramBuilder::relation`].
/// * **Expression form** (`jstar_table!(builder, Name(...) orderby (...))`):
///   declares the table on the builder and returns the
///   [`crate::schema::TableId`] — the positional escape hatch.
///
/// See the [module docs](crate::dsl) for a worked example of both.
#[macro_export]
macro_rules! jstar_table {
    // ── Item form: emit struct + Relation impl + Field tokens. ──────
    ($(#[$meta:meta])* $vis:vis $name:ident ( $($cols:tt)* ) orderby ( $($ob:tt)* )) => {
        $crate::__jstar_columns!([jstar_table @emit [$(#[$meta])*] [$vis] $name [$($ob)*]]; $($cols)*);
    };
    ($(#[$meta:meta])* $vis:vis $name:ident ( $($cols:tt)* )) => {
        $crate::__jstar_columns!([jstar_table @emit [$(#[$meta])*] [$vis] $name []]; $($cols)*);
    };

    // ── Expression form: declare on a builder, return the TableId. ──
    ($p:expr, $name:ident ( $($cols:tt)* ) orderby ( $($ob:tt)* )) => {
        $p.table(stringify!($name), |b| {
            let b = $crate::__jstar_columns!([jstar_table @build b]; $($cols)*);
            b.orderby(&$crate::jstar_table!(@ob $($ob)*))
        })
    };
    ($p:expr, $name:ident ( $($cols:tt)* )) => {
        $p.table(stringify!($name), |b| {
            $crate::__jstar_columns!([jstar_table @build b]; $($cols)*)
        })
    };

    // Expression-form callback: chain the declared columns onto the
    // [`crate::schema::TableBuilder`], then the key split (if any).
    (@build $b:ident; [$( ($idx:expr, $n:ident, $kind:tt) )*]; $key:tt) => {
        $crate::__jstar_columns!(@apply_key $key,
            $b $( .col(stringify!($n), $crate::__jstar_columns!(@value_ty $kind)) )*
        )
    };

    // Orderby list: accumulate component expressions, then emit one
    // `vec![...]` literal.
    (@ob $($items:tt)*) => {
        $crate::jstar_table!(@oblist [] $($items)*)
    };
    (@oblist [$($acc:expr,)*] ) => {
        ::std::vec![$($acc),*]
    };
    (@oblist [$($acc:expr,)*] seq $f:ident $(, $($rest:tt)*)?) => {
        $crate::jstar_table!(@oblist [$($acc,)* $crate::orderby::seq(stringify!($f)),] $($($rest)*)?)
    };
    (@oblist [$($acc:expr,)*] par $f:ident $(, $($rest:tt)*)?) => {
        $crate::jstar_table!(@oblist [$($acc,)* $crate::orderby::par(stringify!($f)),] $($($rest)*)?)
    };
    (@oblist [$($acc:expr,)*] $lit:ident $(, $($rest:tt)*)?) => {
        $crate::jstar_table!(@oblist [$($acc,)* $crate::orderby::strat(stringify!($lit)),] $($($rest)*)?)
    };

    // Item-form callback: the struct, its Relation impl, and one Field
    // token per column.
    (@emit [$($meta:tt)*] [$vis:vis] $name:ident [$($ob:tt)*];
        [$( ($idx:expr, $n:ident, $kind:tt) )*]; $key:tt) => {
        $($meta)*
        #[derive(Debug, Clone, PartialEq)]
        $vis struct $name {
            $( pub $n: $crate::__jstar_columns!(@rust_ty $kind), )*
        }

        impl $crate::relation::Relation for $name {
            const NAME: &'static str = ::core::stringify!($name);
            const COLUMNS: &'static [$crate::relation::ColumnSpec] = &[
                $( $crate::relation::ColumnSpec {
                    name: ::core::stringify!($n),
                    ty: $crate::__jstar_columns!(@value_ty $kind),
                }, )*
            ];
            const KEY_ARITY: ::core::option::Option<usize> =
                $crate::__jstar_columns!(@key $key);

            fn orderby() -> ::std::vec::Vec<$crate::orderby::OrderComponent> {
                $crate::jstar_table!(@ob $($ob)*)
            }

            fn from_tuple(t: &$crate::tuple::Tuple) -> Self {
                $name {
                    $( $n: $crate::relation::FieldValue::from_value(t.get($idx)), )*
                }
            }

            fn into_values(self) -> ::std::vec::Vec<$crate::value::Value> {
                ::std::vec![ $( $crate::relation::FieldValue::into_value(self.$n), )* ]
            }
        }

        #[allow(non_upper_case_globals)]
        impl $name {
            $(
                #[doc = ::core::concat!(
                    "Typed field token for column `", ::core::stringify!($n), "`."
                )]
                pub const $n: $crate::relation::Field<
                    $name,
                    $crate::__jstar_columns!(@rust_ty $kind),
                > = $crate::relation::Field::new($idx, ::core::stringify!($n));
            )*
        }
    };
}

/// Declares an order chain on a [`crate::program::ProgramBuilder`] using
/// the paper's `order A < B < C` notation.
#[macro_export]
macro_rules! jstar_order {
    ($p:expr, $first:ident $(< $rest:ident)*) => {
        $p.order(&[stringify!($first) $(, stringify!($rest))*])
    };
}

/// Implements [`crate::relation::Relation`] (plus per-column
/// [`crate::relation::Field`] tokens) for an **existing** hand-written
/// struct — the typed-façade entry point for apps that wrap domain
/// types and therefore cannot let [`crate::jstar_table!`] generate the
/// struct for them.
///
/// The column list uses the paper's declaration notation (the same
/// grammar as `jstar_table!`, including the `->` key split and the
/// `orderby (...)` clause); every struct field must appear as a column
/// with the matching Rust type (`int` → `i64`, `double` → `f64`,
/// `String` → `Arc<str>`, `boolean` → `bool`) — a missing or mistyped
/// field is a compile error in the generated `from_tuple`. By default
/// the table is named after the struct; `as "Name"` maps the struct
/// onto a table declared under a different name (e.g. a decode-side
/// view of a table that another relation owns).
///
/// ```
/// use jstar_core::prelude::*;
///
/// /// Hand-written: carries domain methods `jstar_table!` could not emit.
/// #[derive(Debug, Clone, PartialEq)]
/// pub struct Reading {
///     pub id: i64,
///     pub value: f64,
/// }
/// impl Reading {
///     pub fn is_anomalous(&self) -> bool {
///         self.value.abs() > 100.0
///     }
/// }
///
/// jstar_core::relation! {
///     Reading(int id -> double value) orderby (Int, seq id)
/// }
///
/// let mut p = ProgramBuilder::new();
/// let _readings = p.relation::<Reading>();
/// p.put_rel(Reading { id: 0, value: 150.0 });
/// let program = std::sync::Arc::new(p.build().unwrap());
/// let mut engine = Engine::new(program, EngineConfig::sequential());
/// engine.run().unwrap();
/// let anomalies = engine
///     .collect_rel(Reading::query().gt(Reading::value, 100.0))
///     .into_iter()
///     .filter(Reading::is_anomalous)
///     .count();
/// assert_eq!(anomalies, 1);
/// ```
#[macro_export]
macro_rules! relation {
    // ── Entry points: optional `as "Table"` × optional orderby. ─────
    ($name:ident as $table:literal ( $($cols:tt)* ) orderby ( $($ob:tt)* )) => {
        $crate::__jstar_columns!([relation @emit [$table] $name [$($ob)*]]; $($cols)*);
    };
    ($name:ident as $table:literal ( $($cols:tt)* )) => {
        $crate::__jstar_columns!([relation @emit [$table] $name []]; $($cols)*);
    };
    ($name:ident ( $($cols:tt)* ) orderby ( $($ob:tt)* )) => {
        $crate::__jstar_columns!([relation @emit [] $name [$($ob)*]]; $($cols)*);
    };
    ($name:ident ( $($cols:tt)* )) => {
        $crate::__jstar_columns!([relation @emit [] $name []]; $($cols)*);
    };

    (@name $name:ident) => { ::core::stringify!($name) };
    (@name $name:ident $table:literal) => { $table };

    // Callback: the Relation impl and one Field token per column,
    // attached to the caller's pre-existing struct.
    (@emit [$($table:literal)?] $name:ident [$($ob:tt)*];
        [$( ($idx:expr, $n:ident, $kind:tt) )*]; $key:tt) => {
        impl $crate::relation::Relation for $name {
            const NAME: &'static str = $crate::relation!(@name $name $($table)?);
            const COLUMNS: &'static [$crate::relation::ColumnSpec] = &[
                $( $crate::relation::ColumnSpec {
                    name: ::core::stringify!($n),
                    ty: $crate::__jstar_columns!(@value_ty $kind),
                }, )*
            ];
            const KEY_ARITY: ::core::option::Option<usize> =
                $crate::__jstar_columns!(@key $key);

            fn orderby() -> ::std::vec::Vec<$crate::orderby::OrderComponent> {
                $crate::jstar_table!(@ob $($ob)*)
            }

            fn from_tuple(t: &$crate::tuple::Tuple) -> Self {
                $name {
                    $( $n: $crate::relation::FieldValue::from_value(t.get($idx)), )*
                }
            }

            fn into_values(self) -> ::std::vec::Vec<$crate::value::Value> {
                ::std::vec![ $( $crate::relation::FieldValue::into_value(self.$n), )* ]
            }
        }

        #[allow(non_upper_case_globals)]
        impl $name {
            $(
                #[doc = ::core::concat!(
                    "Typed field token for column `", ::core::stringify!($n), "`."
                )]
                pub const $n: $crate::relation::Field<
                    $name,
                    $crate::__jstar_columns!(@rust_ty $kind),
                > = $crate::relation::Field::new($idx, ::core::stringify!($n));
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::orderby::OrderComponent;
    use crate::prelude::*;

    #[test]
    fn ship_declaration_matches_builder_form() {
        // table Ship(int frame -> int x, int y, int dx, int dy)
        //   orderby (Int, seq frame)           — §3's declaration.
        let mut p = ProgramBuilder::new();
        let ship = jstar_table!(p, Ship(int frame -> int x, int y, int dx, int dy)
            orderby (Int, seq frame));
        let prog = p.build().unwrap();
        let def = prog.def(ship);
        assert_eq!(def.name, "Ship");
        assert_eq!(def.arity(), 5);
        assert_eq!(def.key_arity, Some(1));
        assert_eq!(def.orderby, vec![strat("Int"), seq("frame")]);
    }

    #[test]
    fn fig5_estimate_and_done() {
        // Fig. 5's tables, near-verbatim.
        let mut p = ProgramBuilder::new();
        let _vertex = jstar_table!(p, Vertex(int index, String name) orderby (Vertex));
        let _edge = jstar_table!(p, Edge(int from, int to, int value) orderby (Edge));
        let estimate = jstar_table!(p, Estimate(int vertex, int distance)
            orderby (Int, seq distance, Estimate));
        let done = jstar_table!(p, Done(int vertex -> int distance)
            orderby (Int, seq distance, Done));
        jstar_order!(p, Vertex < Edge < Int);
        jstar_order!(p, Estimate < Done);
        let prog = p.build().unwrap();
        assert_eq!(prog.def(done).key_arity, Some(1));
        assert_eq!(prog.def(estimate).orderby.len(), 3);
        let sa = prog.strata().lookup("Estimate").unwrap();
        let sb = prog.strata().lookup("Done").unwrap();
        assert!(prog.strata().declared_lt(sa, sb));
    }

    #[test]
    fn multi_column_key_and_par() {
        // table Data(int iter, int index -> double value)
        //   orderby (Int, seq iter, Data, seq index)   — §6.6's table.
        let mut p = ProgramBuilder::new();
        let data = jstar_table!(p, Data(int iter, int index -> double value)
            orderby (Int, seq iter, Data, seq index));
        let row = jstar_table!(p, RowRequest(int row) orderby (Row, par row));
        let prog = p.build().unwrap();
        assert_eq!(prog.def(data).key_arity, Some(2));
        assert_eq!(prog.def(data).columns[2].ty, ValueType::Double);
        assert_eq!(
            prog.def(row).orderby,
            vec![strat("Row"), OrderComponent::Par("row".into())]
        );
    }

    #[test]
    fn table_without_orderby() {
        let mut p = ProgramBuilder::new();
        let t = jstar_table!(p, Plain(String name, boolean flag));
        let prog = p.build().unwrap();
        assert_eq!(prog.def(t).orderby.len(), 0);
        assert_eq!(prog.def(t).columns[1].ty, ValueType::Bool);
        assert_eq!(prog.def(t).key_arity, None);
    }

    #[test]
    fn macro_program_runs_end_to_end() {
        let mut p = ProgramBuilder::new();
        let ship = jstar_table!(p, Ship(int frame -> int x)
            orderby (Int, seq frame));
        p.rule("move", ship, move |ctx, s| {
            if s.int(1) < 400 {
                ctx.put(Tuple::new(
                    ship,
                    vec![Value::Int(s.int(0) + 1), Value::Int(s.int(1) + 150)],
                ));
            }
        });
        p.put(Tuple::new(ship, vec![Value::Int(0), Value::Int(10)]));
        let prog = std::sync::Arc::new(p.build().unwrap());
        let mut engine = Engine::new(prog, EngineConfig::sequential());
        engine.run().unwrap();
        assert_eq!(engine.gamma().collect(&Query::on(ship)).len(), 4);
    }
}
