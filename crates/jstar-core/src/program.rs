//! Programs — tables + order declarations + rules + initial puts.
//!
//! Programs are normally assembled through the **typed layer**: declare
//! relations with the [`crate::jstar_table!`] item form, register them
//! with [`ProgramBuilder::relation`], attach rules with
//! [`ProgramBuilder::rule_rel`] / [`ProgramBuilder::rule_rel_with_model`]
//! (bodies receive decoded relation structs), and seed the run with
//! [`ProgramBuilder::put_rel`]. The positional entry points
//! ([`ProgramBuilder::table`], [`ProgramBuilder::rule`],
//! [`ProgramBuilder::put`]) remain as the low-level escape hatch for
//! generic tooling. Builder misuse (duplicate table or column names) is
//! recorded and reported by [`ProgramBuilder::build`] as a
//! [`JStarError`], not a panic.
//!
//! A [`Program`] is the object the paper's XText compiler would produce
//! from JStar source: fully resolved table schemas, the strata order, the
//! rule set indexed by trigger table, and the initial `put` commands. The
//! paper's workflow stage 1 ("Application Logic") is [`ProgramBuilder`];
//! stage 2 ("Possible Execution Orderings") is [`Program::check_causality`]
//! / [`Program::validate_strict`]; stages 3–4 (parallelism strategy, data
//! structures) live entirely in [`crate::engine::EngineConfig`], separate
//! from the program, exactly as §2 prescribes.

use crate::causality::{check_rule, CausalityModel, ObligationResult};
use crate::engine::RuleCtx;
use crate::error::{JStarError, Result};
use crate::orderby::{OrderComponent, OrderKey, ResolvedOrderBy};
use crate::query::Query;
use crate::relation::{JoinOn, JoinOn2, Relation, TableHandle};
use crate::rule::{JoinPlan, JoinStage, Rule, RuleBody};
use crate::schema::{TableDef, TableDefBuilder, TableId};
use crate::stats::DependencyGraph;
use crate::strata::{StrataBuilder, StrataOrder};
use crate::tuple::Tuple;
use std::any::TypeId;
use std::collections::HashMap;
use std::sync::Arc;

/// Builds a [`Program`] — the paper's workflow stage 1.
#[derive(Default)]
pub struct ProgramBuilder {
    tables: Vec<TableDef>,
    name_to_id: HashMap<String, TableId>,
    /// Typed-relation registrations: which Rust type owns which table.
    /// Small (one entry per relation), searched linearly.
    relations: Vec<(TypeId, TableId)>,
    orders: Vec<Vec<String>>,
    rules: Vec<Rule>,
    initial: Vec<Tuple>,
    /// Builder misuse (duplicate tables/columns, unregistered
    /// relations) collected here and reported by
    /// [`ProgramBuilder::build`] instead of panicking mid-declaration.
    errors: Vec<JStarError>,
}

impl ProgramBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a table. The closure configures columns, keys and the
    /// orderby list:
    ///
    /// ```
    /// use jstar_core::prelude::*;
    /// let mut p = ProgramBuilder::new();
    /// let ship = p.table("Ship", |b| {
    ///     b.col_int("frame").col_int("x").key(1)
    ///      .orderby(&[strat("Int"), seq("frame")])
    /// });
    /// ```
    pub fn table(
        &mut self,
        name: &str,
        f: impl FnOnce(TableDefBuilder) -> TableDefBuilder,
    ) -> TableId {
        if let Some(&existing) = self.name_to_id.get(name) {
            // Misuse is recorded, not panicked on: the existing id keeps
            // the fluent call site compiling and build() reports the
            // error with the offending table name.
            self.errors.push(JStarError::DuplicateTable {
                table: name.to_string(),
            });
            return existing;
        }
        let id = TableId(self.tables.len() as u32);
        let b = f(TableDefBuilder::new(name));
        if let Some(e) = b.error {
            self.errors.push(e);
        }
        self.tables.push(TableDef {
            id,
            name: b.name,
            columns: b.columns,
            key_arity: b.key_arity,
            orderby: b.orderby,
        });
        self.name_to_id.insert(name.to_string(), id);
        id
    }

    /// Registers (or looks up) the typed relation `R`, declaring its
    /// table from the schema the [`Relation`] impl carries. Idempotent:
    /// repeated calls return the same handle, so rules and puts can
    /// auto-register their relations.
    ///
    /// ```
    /// use jstar_core::prelude::*;
    /// jstar_core::jstar_table! {
    ///     /// table Ship(int frame -> int x) orderby (Int, seq frame)
    ///     pub Ship(int frame -> int x) orderby (Int, seq frame)
    /// }
    /// let mut p = ProgramBuilder::new();
    /// let ship = p.relation::<Ship>();
    /// assert_eq!(ship.id().index(), 0);
    /// ```
    pub fn relation<R: Relation>(&mut self) -> TableHandle<R> {
        let tid = TypeId::of::<R>();
        if let Some(&(_, id)) = self.relations.iter().find(|(t, _)| *t == tid) {
            return TableHandle::new(id);
        }
        let id = self.table(R::NAME, |mut b| {
            for c in R::COLUMNS {
                b = b.col(c.name, c.ty);
            }
            if let Some(k) = R::KEY_ARITY {
                b = b.key(k);
            }
            b.orderby(&R::orderby())
        });
        self.relations.push((tid, id));
        TableHandle::new(id)
    }

    /// Declares an order chain: `order A < B < C`.
    pub fn order(&mut self, chain: &[&str]) {
        self.orders
            .push(chain.iter().map(|s| s.to_string()).collect());
    }

    /// Adds a rule without a causality model (strict validation will flag
    /// it, like the paper's compiler warning for unproved rules).
    pub fn rule(
        &mut self,
        name: &str,
        trigger: TableId,
        body: impl Fn(&RuleCtx<'_>, &Tuple) + Send + Sync + 'static,
    ) {
        self.rules.push(Rule {
            name: name.to_string(),
            trigger,
            body: Arc::new(body) as RuleBody,
            model: None,
            plan: None,
        });
    }

    /// Adds a rule together with its causality model for static checking.
    pub fn rule_with_model(
        &mut self,
        name: &str,
        trigger: TableId,
        model: CausalityModel,
        body: impl Fn(&RuleCtx<'_>, &Tuple) + Send + Sync + 'static,
    ) {
        self.rules.push(Rule {
            name: name.to_string(),
            trigger,
            body: Arc::new(body) as RuleBody,
            model: Some(model),
            plan: None,
        });
    }

    /// Adds a typed rule: `R`'s table triggers it and the body receives
    /// the decoded relation struct instead of a raw tuple. The relation
    /// is auto-registered. Strict validation flags the missing
    /// causality model, as with [`ProgramBuilder::rule`].
    ///
    /// ```
    /// use jstar_core::prelude::*;
    /// jstar_core::jstar_table! {
    ///     /// table Ship(int frame -> int x) orderby (Int, seq frame)
    ///     pub Ship(int frame -> int x) orderby (Int, seq frame)
    /// }
    /// let mut p = ProgramBuilder::new();
    /// p.rule_rel("move", |ctx, s: Ship| {
    ///     if s.x < 400 {
    ///         ctx.put_rel(Ship { frame: s.frame + 1, x: s.x + 150 });
    ///     }
    /// });
    /// p.put_rel(Ship { frame: 0, x: 10 });
    /// assert!(p.build().is_ok());
    /// ```
    pub fn rule_rel<R: Relation>(
        &mut self,
        name: &str,
        body: impl Fn(&RuleCtx<'_>, R) + Send + Sync + 'static,
    ) {
        let trigger = self.relation::<R>().id();
        self.rules.push(Rule {
            name: name.to_string(),
            trigger,
            body: Arc::new(move |ctx: &RuleCtx<'_>, t: &Tuple| body(ctx, R::from_tuple(t)))
                as RuleBody,
            model: None,
            plan: None,
        });
    }

    /// Adds a typed rule together with its causality model for static
    /// checking — the typed twin of [`ProgramBuilder::rule_with_model`].
    pub fn rule_rel_with_model<R: Relation>(
        &mut self,
        name: &str,
        model: CausalityModel,
        body: impl Fn(&RuleCtx<'_>, R) + Send + Sync + 'static,
    ) {
        let trigger = self.relation::<R>().id();
        self.rules.push(Rule {
            name: name.to_string(),
            trigger,
            body: Arc::new(move |ctx: &RuleCtx<'_>, t: &Tuple| body(ctx, R::from_tuple(t)))
                as RuleBody,
            model: Some(model),
            plan: None,
        });
    }

    /// Adds a typed **join rule** — a rule whose body is expressible as
    /// (join → filter → emit): for each trigger row `R`, probe `S`'s
    /// Gamma table where every `on` key pair is equal, keep the
    /// `(trigger, probed)` pairs passing `filter`, and run `emit` on
    /// each survivor.
    ///
    /// Unlike [`ProgramBuilder::rule_rel`], the registered rule carries
    /// an inspectable [`crate::rule::JoinPlan`] alongside the
    /// synthesized per-tuple body. That shape is what lets the engine
    /// execute a whole extracted class as **one batched hash join**
    /// against Gamma (grouping the class by its join-key values and
    /// probing once per distinct key) when the class clears
    /// [`crate::engine::EngineConfig::delta_join_threshold`]; below the
    /// threshold, or wherever batching is disabled, the per-tuple body
    /// runs instead. Both paths are built from the same plan parts, so
    /// they emit identical tuples.
    ///
    /// Strict validation flags the missing causality model; use
    /// [`ProgramBuilder::rule_rel_join_with_model`] to attach one.
    pub fn rule_rel_join<R: Relation, S: Relation>(
        &mut self,
        name: &str,
        on: JoinOn<R, S>,
        filter: impl Fn(&R, &S) -> bool + Send + Sync + 'static,
        emit: impl Fn(&RuleCtx<'_>, &R, &S) + Send + Sync + 'static,
    ) {
        self.push_join_rule(name, on, filter, emit, None);
    }

    /// [`ProgramBuilder::rule_rel_join`] with a causality model attached
    /// for static checking.
    pub fn rule_rel_join_with_model<R: Relation, S: Relation>(
        &mut self,
        name: &str,
        on: JoinOn<R, S>,
        model: CausalityModel,
        filter: impl Fn(&R, &S) -> bool + Send + Sync + 'static,
        emit: impl Fn(&RuleCtx<'_>, &R, &S) + Send + Sync + 'static,
    ) {
        self.push_join_rule(name, on, filter, emit, Some(model));
    }

    fn push_join_rule<R: Relation, S: Relation>(
        &mut self,
        name: &str,
        on: JoinOn<R, S>,
        filter: impl Fn(&R, &S) -> bool + Send + Sync + 'static,
        emit: impl Fn(&RuleCtx<'_>, &R, &S) + Send + Sync + 'static,
        model: Option<CausalityModel>,
    ) {
        let trigger = self.relation::<R>().id();
        let probe_table = self.relation::<S>().id();
        let plan = Arc::new(JoinPlan {
            stages: vec![JoinStage {
                probe_table,
                keys: on
                    .into_pairs()
                    .into_iter()
                    .map(|(tf, pf)| ((0, tf), pf))
                    .collect(),
            }],
            filter: Arc::new(move |rows: &[&Tuple]| {
                filter(&R::from_tuple(rows[0]), &S::from_tuple(rows[1]))
            }),
            emit: Arc::new(move |ctx: &RuleCtx<'_>, rows: &[&Tuple]| {
                emit(ctx, &R::from_tuple(rows[0]), &S::from_tuple(rows[1]))
            }),
        });
        self.rules.push(Rule {
            name: name.to_string(),
            trigger,
            body: join_fallback_body(Arc::clone(&plan)),
            model,
            plan: Some(plan),
        });
    }

    /// Adds a typed **two-stage join rule** — a rule whose body joins
    /// the trigger `R` against *two* probed relations in fixed order:
    /// stage 1 probes `S1` where every `on1` pair matches the trigger,
    /// stage 2 probes `S2` where every `on2` pair matches the trigger
    /// ([`JoinOn2::eq_t`]) and/or the stage-1 row ([`JoinOn2::eq_p`]).
    /// Full `(R, S1, S2)` combinations passing `filter` are handed to
    /// `emit`.
    ///
    /// The registered [`crate::rule::JoinPlan`] carries both stages, so
    /// delta-join execution lowers the whole class onto one coordinated
    /// leapfrog cursor walk per stage instead of nested per-tuple
    /// probes. Strict validation flags the missing causality model.
    pub fn rule_rel_join2<R: Relation, S1: Relation, S2: Relation>(
        &mut self,
        name: &str,
        on1: JoinOn<R, S1>,
        on2: JoinOn2<R, S1, S2>,
        filter: impl Fn(&R, &S1, &S2) -> bool + Send + Sync + 'static,
        emit: impl Fn(&RuleCtx<'_>, &R, &S1, &S2) + Send + Sync + 'static,
    ) {
        let trigger = self.relation::<R>().id();
        let table1 = self.relation::<S1>().id();
        let table2 = self.relation::<S2>().id();
        let plan = Arc::new(JoinPlan {
            stages: vec![
                JoinStage {
                    probe_table: table1,
                    keys: on1
                        .into_pairs()
                        .into_iter()
                        .map(|(tf, pf)| ((0, tf), pf))
                        .collect(),
                },
                JoinStage {
                    probe_table: table2,
                    keys: on2.into_pairs(),
                },
            ],
            filter: Arc::new(move |rows: &[&Tuple]| {
                filter(
                    &R::from_tuple(rows[0]),
                    &S1::from_tuple(rows[1]),
                    &S2::from_tuple(rows[2]),
                )
            }),
            emit: Arc::new(move |ctx: &RuleCtx<'_>, rows: &[&Tuple]| {
                emit(
                    ctx,
                    &R::from_tuple(rows[0]),
                    &S1::from_tuple(rows[1]),
                    &S2::from_tuple(rows[2]),
                )
            }),
        });
        self.rules.push(Rule {
            name: name.to_string(),
            trigger,
            body: join_fallback_body(Arc::clone(&plan)),
            model: None,
            plan: Some(plan),
        });
    }

    /// Adds an initial `put` command.
    pub fn put(&mut self, t: Tuple) {
        self.initial.push(t);
    }

    /// Adds a typed initial `put`, auto-registering the relation.
    pub fn put_rel<R: Relation>(&mut self, row: R) {
        let id = self.relation::<R>().id();
        self.initial.push(Tuple::new(id, row.into_values()));
    }

    /// Finalises the program: interns strat literals, linearises the
    /// declared order, resolves every orderby list. Fails on builder
    /// misuse recorded earlier (duplicate tables or columns), on order
    /// cycles, or on orderby lists naming unknown columns.
    pub fn build(self) -> Result<Program> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let mut sb = StrataBuilder::new();
        // Intern order-declaration literals first so their ranks follow
        // declaration order deterministically, then any literals that only
        // appear in orderby lists.
        for chain in &self.orders {
            let refs: Vec<&str> = chain.iter().map(|s| s.as_str()).collect();
            sb.order_chain(&refs);
        }
        for t in &self.tables {
            for c in &t.orderby {
                if let OrderComponent::Strat(name) = c {
                    sb.intern(name);
                }
            }
        }
        let strata = sb
            .build()
            .map_err(|e| JStarError::Stratification(e.to_string()))?;

        let defs: Vec<Arc<TableDef>> = self.tables.into_iter().map(Arc::new).collect();
        let mut orderbys = Vec::with_capacity(defs.len());
        for d in &defs {
            orderbys
                .push(ResolvedOrderBy::resolve(d, &strata).map_err(JStarError::Stratification)?);
        }
        let by_name: HashMap<String, Arc<TableDef>> = defs
            .iter()
            .map(|d| (d.name.clone(), Arc::clone(d)))
            .collect();

        let rules: Vec<Arc<Rule>> = self.rules.into_iter().map(Arc::new).collect();
        let mut rules_by_trigger = vec![Vec::new(); defs.len()];
        for (i, r) in rules.iter().enumerate() {
            rules_by_trigger[r.trigger.index()].push(i);
        }

        Ok(Program {
            defs,
            by_name,
            orderbys,
            strata,
            rules,
            rules_by_trigger,
            relations: self.relations,
            initial: self.initial,
        })
    }
}

/// Synthesizes the per-tuple nested-loop body from a join plan: a
/// recursive descent over the stages, one indexed Gamma query per
/// stage per partial row. Both execution modes (this fallback and the
/// delta-join cursor walk) are built from the same plan parts, so they
/// share one definition of the rule's meaning and cannot drift apart.
fn join_fallback_body(plan: Arc<JoinPlan>) -> RuleBody {
    Arc::new(move |ctx: &RuleCtx<'_>, t: &Tuple| {
        let mut rows = vec![t.clone()];
        join_descend(ctx, &plan, &mut rows);
    }) as RuleBody
}

fn join_descend(ctx: &RuleCtx<'_>, plan: &JoinPlan, rows: &mut Vec<Tuple>) {
    let depth = rows.len() - 1;
    if depth == plan.stages.len() {
        let refs: Vec<&Tuple> = rows.iter().collect();
        if (plan.filter)(&refs) {
            (plan.emit)(ctx, &refs);
        }
        return;
    }
    let stage = &plan.stages[depth];
    let mut q = Query::on(stage.probe_table);
    for &((row, f), pf) in &stage.keys {
        q.add_eq(pf, rows[row].get(f).clone());
    }
    // Candidates are collected before descending: stages may probe the
    // same table (self-joins), and recursing while a store iteration
    // holds its lock would deadlock.
    let mut candidates = Vec::new();
    ctx.query_for_each(&q, |p| {
        candidates.push(p.clone());
        true
    });
    for p in candidates {
        rows.push(p);
        join_descend(ctx, plan, rows);
        rows.pop();
    }
}

/// A complete, resolved JStar program.
pub struct Program {
    defs: Vec<Arc<TableDef>>,
    by_name: HashMap<String, Arc<TableDef>>,
    orderbys: Vec<ResolvedOrderBy>,
    strata: StrataOrder,
    rules: Vec<Arc<Rule>>,
    rules_by_trigger: Vec<Vec<usize>>,
    /// Typed-relation registrations, searched linearly (a handful of
    /// entries; cheaper than hashing on the rule-body hot path).
    relations: Vec<(TypeId, TableId)>,
    initial: Vec<Tuple>,
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field(
                "tables",
                &self.defs.iter().map(|d| &d.name).collect::<Vec<_>>(),
            )
            .field("rules", &self.rules.len())
            .field("initial", &self.initial.len())
            .finish()
    }
}

impl Program {
    /// All table definitions, indexed by [`TableId`].
    pub fn defs(&self) -> &[Arc<TableDef>] {
        &self.defs
    }

    /// One table definition.
    pub fn def(&self, id: TableId) -> &Arc<TableDef> {
        &self.defs[id.index()]
    }

    /// Table lookup by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).map(|d| d.id)
    }

    /// The table a typed relation was registered as, if any.
    pub fn relation_id<R: Relation>(&self) -> Option<TableId> {
        let tid = TypeId::of::<R>();
        self.relations
            .iter()
            .find(|(t, _)| *t == tid)
            .map(|&(_, id)| id)
    }

    /// The typed handle for relation `R`. Panics when `R` was never
    /// registered with this program — a programming bug, like querying
    /// an undeclared table.
    pub fn handle<R: Relation>(&self) -> TableHandle<R> {
        match self.relation_id::<R>() {
            Some(id) => TableHandle::new(id),
            None => panic!("relation {} is not registered in this program", R::NAME),
        }
    }

    /// Resolved orderby specs, indexed by [`TableId`].
    pub fn orderbys(&self) -> &[ResolvedOrderBy] {
        &self.orderbys
    }

    /// The strata order.
    pub fn strata(&self) -> &StrataOrder {
        &self.strata
    }

    /// All rules.
    pub fn rules(&self) -> &[Arc<Rule>] {
        &self.rules
    }

    /// Rule indexes grouped by trigger table.
    pub fn rules_by_trigger(&self) -> &[Vec<usize>] {
        &self.rules_by_trigger
    }

    /// Initial `put` commands.
    pub fn initial(&self) -> &[Tuple] {
        &self.initial
    }

    /// The order key of a tuple under this program.
    pub fn key_of(&self, t: &Tuple) -> OrderKey {
        self.orderbys[t.table().index()].key_of(t)
    }

    /// Runs static causality checking on every rule that has a model —
    /// workflow stage 2. Rules without models yield a single unproved
    /// result so they are visible in the report.
    pub fn check_causality(&self) -> Vec<ObligationResult> {
        let mut results = Vec::new();
        for rule in &self.rules {
            match &rule.model {
                Some(model) => results.extend(check_rule(
                    &rule.name,
                    self.def(rule.trigger),
                    model,
                    &self.by_name,
                    &self.orderbys,
                    &self.strata,
                )),
                None => results.push(ObligationResult {
                    rule: rule.name.clone(),
                    label: "no causality model".into(),
                    proved: false,
                    message: "rule has no causality model; cannot verify the Law of Causality"
                        .into(),
                }),
            }
        }
        results
    }

    /// Strict validation: every obligation of every rule must be proved.
    pub fn validate_strict(&self) -> Result<()> {
        let failures: Vec<String> = self
            .check_causality()
            .into_iter()
            .filter(|r| !r.proved)
            .map(|r| format!("{} [{}]: {}", r.rule, r.label, r.message))
            .collect();
        if failures.is_empty() {
            Ok(())
        } else {
            Err(JStarError::Unproved(failures.join("; ")))
        }
    }

    /// The rule dependency graph (Fig. 7-style), derived from causality
    /// models' put targets.
    pub fn dependency_graph(&self) -> DependencyGraph {
        let tables = self.defs.iter().map(|d| d.name.clone()).collect();
        let rules = self
            .rules
            .iter()
            .map(|r| {
                let outputs = r
                    .model
                    .as_ref()
                    .map(|m| {
                        m.puts
                            .iter()
                            .filter_map(|p| self.table_id(&p.out_table))
                            .map(|t| t.index())
                            .collect()
                    })
                    .unwrap_or_default();
                (r.name.clone(), r.trigger.index(), outputs)
            })
            .collect();
        DependencyGraph { tables, rules }
    }
}

#[cfg(test)]
impl ProgramBuilder {
    /// Test helper: id of an already-declared table.
    fn table_id_for_test(&self, name: &str) -> TableId {
        self.name_to_id[name]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causality::{ModelCtx, PutModel, QueryModel};
    use crate::orderby::{seq, strat};
    use crate::value::Value;

    #[test]
    fn build_resolves_tables_and_orders() {
        let mut p = ProgramBuilder::new();
        let a = p.table("A", |b| b.col_int("t").orderby(&[strat("A"), seq("t")]));
        let b = p.table("B", |bb| bb.col_int("t").orderby(&[strat("B"), seq("t")]));
        p.order(&["A", "B"]);
        let prog = p.build().unwrap();
        assert_eq!(prog.table_id("A"), Some(a));
        assert_eq!(prog.table_id("B"), Some(b));
        assert_eq!(prog.defs().len(), 2);
        let sa = prog.strata().lookup("A").unwrap();
        let sb = prog.strata().lookup("B").unwrap();
        assert!(prog.strata().declared_lt(sa, sb));
    }

    #[test]
    fn cyclic_order_fails_to_build() {
        let mut p = ProgramBuilder::new();
        let _ = p.table("A", |b| b.col_int("t").orderby(&[strat("X")]));
        p.order(&["X", "Y"]);
        p.order(&["Y", "X"]);
        let err = p.build().unwrap_err();
        assert!(matches!(err, JStarError::Stratification(_)));
    }

    #[test]
    fn orderby_unknown_column_fails() {
        let mut p = ProgramBuilder::new();
        let _ = p.table("A", |b| b.col_int("t").orderby(&[seq("nope")]));
        let err = p.build().unwrap_err();
        assert!(err.to_string().contains("unknown column"));
    }

    #[test]
    fn duplicate_table_is_a_build_error() {
        let mut p = ProgramBuilder::new();
        let a = p.table("A", |b| b.col_int("t"));
        let also_a = p.table("A", |b| b.col_int("t"));
        assert_eq!(a, also_a, "misuse still returns a usable id");
        let err = p.build().unwrap_err();
        assert_eq!(err, JStarError::DuplicateTable { table: "A".into() });
    }

    #[test]
    fn duplicate_column_is_a_build_error() {
        let mut p = ProgramBuilder::new();
        let _ = p.table("A", |b| b.col_int("t").col_double("t"));
        let err = p.build().unwrap_err();
        assert_eq!(
            err,
            JStarError::DuplicateColumn {
                table: "A".into(),
                column: "t".into(),
            }
        );
    }

    #[test]
    fn key_of_uses_orderby() {
        let mut p = ProgramBuilder::new();
        let a = p.table("A", |b| b.col_int("t").col_int("x").orderby(&[seq("t")]));
        let prog = p.build().unwrap();
        let t1 = Tuple::new(a, vec![Value::Int(5), Value::Int(99)]);
        let t2 = Tuple::new(a, vec![Value::Int(5), Value::Int(1)]);
        assert_eq!(prog.key_of(&t1), prog.key_of(&t2), "x is not in the key");
    }

    #[test]
    fn check_causality_reports_modelless_rules() {
        let mut p = ProgramBuilder::new();
        let a = p.table("A", |b| b.col_int("t").orderby(&[seq("t")]));
        p.rule("anon", a, |_, _| {});
        let prog = p.build().unwrap();
        let results = prog.check_causality();
        assert_eq!(results.len(), 1);
        assert!(!results[0].proved);
        assert!(prog.validate_strict().is_err());
    }

    #[test]
    fn validated_program_passes_strict() {
        let mut p = ProgramBuilder::new();
        let a = p.table("A", |b| b.col_int("t").orderby(&[seq("t")]));
        let mut cx = ModelCtx::new();
        let bindings = cx.out("t").eq_(&(cx.trig("t") + 1));
        let model = CausalityModel {
            ctx: cx,
            invariants: vec![],
            puts: vec![PutModel {
                out_table: "A".into(),
                guard: vec![],
                bindings,
                label: "tick".into(),
            }],
            queries: vec![],
        };
        p.rule_with_model("tick", a, model, move |ctx, t| {
            if t.int(0) < 3 {
                ctx.put(Tuple::new(a, vec![Value::Int(t.int(0) + 1)]));
            }
        });
        let prog = p.build().unwrap();
        assert!(prog.validate_strict().is_ok());
    }

    #[test]
    fn pvwatts_stratification_error_without_order() {
        // Fig. 4's scenario end to end at the program level.
        let build = |with_order: bool| {
            let mut p = ProgramBuilder::new();
            let pv = p.table("PvWatts", |b| {
                b.col_int("year")
                    .col_int("month")
                    .orderby(&[strat("PvWatts")])
            });
            let _sm = p.table("SumMonth", |b| {
                b.col_int("year")
                    .col_int("month")
                    .orderby(&[strat("SumMonth")])
            });
            if with_order {
                p.order(&["PvWatts", "SumMonth"]);
            }
            let _ = pv;
            let sm_id = p.table_id_for_test("SumMonth");
            let model = CausalityModel {
                ctx: ModelCtx::new(),
                invariants: vec![],
                puts: vec![],
                queries: vec![QueryModel {
                    q_table: "PvWatts".into(),
                    guard: vec![],
                    bindings: vec![],
                    label: "aggregate".into(),
                }],
            };
            p.rule_with_model("summarise", sm_id, model, |_, _| {});
            p.build().unwrap()
        };
        assert!(build(false).validate_strict().is_err());
        assert!(build(true).validate_strict().is_ok());
    }

    #[test]
    fn dependency_graph_from_models() {
        let mut p = ProgramBuilder::new();
        let a = p.table("A", |b| b.col_int("t").orderby(&[seq("t")]));
        let _b = p.table("B", |bb| bb.col_int("t").orderby(&[seq("t")]));
        let mut cx = ModelCtx::new();
        let bindings = cx.out("t").eq_(&cx.trig("t"));
        let model = CausalityModel {
            ctx: cx,
            invariants: vec![],
            puts: vec![PutModel {
                out_table: "B".into(),
                guard: vec![],
                bindings,
                label: String::new(),
            }],
            queries: vec![],
        };
        p.rule_with_model("a-to-b", a, model, |_, _| {});
        let prog = p.build().unwrap();
        let g = prog.dependency_graph();
        assert_eq!(g.tables, vec!["A", "B"]);
        assert_eq!(g.rules, vec![("a-to-b".to_string(), 0, vec![1])]);
        let dot = g.to_dot(None);
        assert!(dot.contains("a-to-b"));
    }

    #[test]
    fn join_rules_carry_plans_and_opaque_rules_do_not() {
        crate::jstar_table! {
            /// table Lhs(int k, int v) orderby (Lhs)
            Lhs(int k, int v) orderby (Lhs)
        }
        crate::jstar_table! {
            /// table Rhs(int k, int w) orderby (Rhs)
            Rhs(int k, int w) orderby (Rhs)
        }
        let mut p = ProgramBuilder::new();
        p.rule_rel("opaque", |_, _: Lhs| {});
        p.rule_rel_join(
            "joined",
            crate::relation::JoinOn::new().eq(Lhs::k, Rhs::k),
            |l: &Lhs, r: &Rhs| l.v < r.w,
            |_, _: &Lhs, _: &Rhs| {},
        );
        let prog = p.build().unwrap();
        assert!(
            prog.rules()[0].plan.is_none(),
            "closure bodies stay opaque and per-tuple"
        );
        let plan = prog.rules()[1]
            .plan
            .as_ref()
            .expect("join rules expose an inspectable plan");
        assert_eq!(plan.stages.len(), 1);
        assert_eq!(
            plan.first_stage().probe_table,
            prog.table_id("Rhs").unwrap()
        );
        assert_eq!(plan.first_stage().keys, vec![((0, 0), 0)]);
        assert_eq!(
            plan.first_stage().trigger_keys().collect::<Vec<_>>(),
            vec![(0, 0)]
        );
        // The non-key columns only feed the filter; their tokens still
        // carry the right indices for anyone extending the join.
        assert_eq!((Lhs::v.index(), Rhs::w.index()), (1, 1));
    }

    #[test]
    fn two_stage_join_rules_carry_both_stages() {
        crate::jstar_table! {
            /// table T0(int a, int b) orderby (T0)
            T0(int a, int b) orderby (T0)
        }
        crate::jstar_table! {
            /// table T1(int c, int d) orderby (T1)
            T1(int c, int d) orderby (T1)
        }
        crate::jstar_table! {
            /// table T2(int e, int f) orderby (T2)
            T2(int e, int f) orderby (T2)
        }
        let mut p = ProgramBuilder::new();
        p.rule_rel_join2(
            "two-stage",
            crate::relation::JoinOn::new().eq(T0::b, T1::c),
            crate::relation::JoinOn2::new()
                .eq_p(T1::d, T2::e)
                .eq_t(T0::a, T2::f),
            |_: &T0, _: &T1, _: &T2| true,
            |_, _: &T0, _: &T1, _: &T2| {},
        );
        let prog = p.build().unwrap();
        let plan = prog.rules()[0].plan.as_ref().expect("plan");
        assert_eq!(plan.stages.len(), 2);
        assert_eq!(plan.stages[0].probe_table, prog.table_id("T1").unwrap());
        assert_eq!(plan.stages[0].keys, vec![((0, 1), 0)]);
        assert_eq!(plan.stages[1].probe_table, prog.table_id("T2").unwrap());
        // eq_p sources row 1 (the stage-1 tuple), eq_t row 0 (trigger).
        assert_eq!(plan.stages[1].keys, vec![((1, 1), 0), ((0, 0), 1)]);
    }
}
