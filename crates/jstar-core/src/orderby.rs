//! Orderby lists and causal order keys — the heart of JStar's Law of
//! Causality (§4 of the paper).
//!
//! Every table declares an `orderby` list that embeds its tuples into one
//! global lexicographic ordering, shared by all tables. The `i`-th level of
//! the Delta tree is sorted by the `i`-th entries of these lists:
//!
//! * a capitalised literal (`Int`, `PvWatts`, ...) — a *stratum* name,
//!   ordered by the program's explicit `order` declarations;
//! * `seq field` — sorted sequentially by the field's value;
//! * `par field` — subtrees are unordered, so everything below executes in
//!   parallel (one equivalence class).
//!
//! [`OrderKey`] is the materialised position of one tuple in this ordering.
//! Keys compare lexicographically; tuples whose keys compare equal form one
//! *equivalence class* and may run in parallel (§5's all-minimums strategy).

use crate::schema::TableDef;
use crate::strata::{StratId, StrataOrder};
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// A component of a declared `orderby` list (field references by name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderComponent {
    /// A capitalised literal ordered by `order` declarations.
    Strat(String),
    /// `seq field`: sorted sequentially by this field.
    Seq(String),
    /// `par field`: unordered — everything below is one equivalence class.
    Par(String),
}

/// Builds a stratum-literal component.
pub fn strat(name: &str) -> OrderComponent {
    OrderComponent::Strat(name.to_string())
}

/// Builds a `seq field` component.
pub fn seq(field: &str) -> OrderComponent {
    OrderComponent::Seq(field.to_string())
}

/// Builds a `par field` component.
pub fn par(field: &str) -> OrderComponent {
    OrderComponent::Par(field.to_string())
}

/// An orderby component with field names resolved to column indexes and
/// stratum literals resolved to ids + total ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolvedComponent {
    Strat {
        id: StratId,
        rank: u32,
    },
    Seq {
        field: usize,
    },
    /// `par`: this level and everything below it is one equivalence class,
    /// so the key is truncated here. The field index is kept for
    /// diagnostics only.
    Par {
        field: usize,
    },
}

/// A table's fully resolved orderby specification.
#[derive(Debug, Clone, Default)]
pub struct ResolvedOrderBy {
    pub components: Vec<ResolvedComponent>,
}

impl ResolvedOrderBy {
    /// Resolves a declared orderby list against a table definition and the
    /// program's strata order.
    pub fn resolve(def: &TableDef, strata: &StrataOrder) -> Result<Self, String> {
        let mut components = Vec::with_capacity(def.orderby.len());
        for c in &def.orderby {
            components.push(match c {
                OrderComponent::Strat(name) => {
                    let id = strata.lookup(name).ok_or_else(|| {
                        format!(
                            "table {}: orderby literal {name} was never interned",
                            def.name
                        )
                    })?;
                    ResolvedComponent::Strat {
                        id,
                        rank: strata.rank(id),
                    }
                }
                OrderComponent::Seq(field) => ResolvedComponent::Seq {
                    field: def.column_index(field).ok_or_else(|| {
                        format!("table {}: orderby names unknown column {field}", def.name)
                    })?,
                },
                OrderComponent::Par(field) => ResolvedComponent::Par {
                    field: def.column_index(field).ok_or_else(|| {
                        format!("table {}: orderby names unknown column {field}", def.name)
                    })?,
                },
            });
        }
        Ok(ResolvedOrderBy { components })
    }

    /// Computes the order key of `tuple` under this specification.
    ///
    /// The key stops at the first `par` component: subtrees under a `par`
    /// node are unordered, so deeper components cannot influence scheduling.
    pub fn key_of(&self, tuple: &Tuple) -> OrderKey {
        let mut parts = Vec::with_capacity(self.components.len());
        for c in &self.components {
            match c {
                ResolvedComponent::Strat { rank, .. } => parts.push(KeyPart::Strat(*rank)),
                ResolvedComponent::Seq { field } => {
                    parts.push(KeyPart::Seq(tuple.get(*field).clone()))
                }
                ResolvedComponent::Par { .. } => break,
            }
        }
        OrderKey(parts)
    }
}

/// One level of an [`OrderKey`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyPart {
    /// A stratum literal, compared by its total rank (a linearisation of the
    /// declared partial order).
    Strat(u32),
    /// A `seq` field value.
    Seq(Value),
}

impl KeyPart {
    fn kind_rank(&self) -> u8 {
        match self {
            KeyPart::Strat(_) => 0,
            KeyPart::Seq(_) => 1,
        }
    }
}

impl PartialOrd for KeyPart {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KeyPart {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (KeyPart::Strat(a), KeyPart::Strat(b)) => a.cmp(b),
            (KeyPart::Seq(a), KeyPart::Seq(b)) => a.cmp(b),
            // Heterogeneous shapes at the same tree level: deterministic
            // fallback (program validation warns about this situation).
            _ => self.kind_rank().cmp(&other.kind_rank()),
        }
    }
}

/// The position of a tuple in the global causal ordering.
///
/// Keys compare lexicographically component by component. When one key is a
/// strict prefix of another, the shorter key orders first (its table's
/// leaves sit at a shallower level of the Delta tree).
///
/// Two tuples whose keys compare `Equal` are in the same **equivalence
/// class**: the Law of Causality cannot order them, so the parallel engine
/// may execute them simultaneously.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct OrderKey(pub Vec<KeyPart>);

impl OrderKey {
    /// The minimal key: orders before (or equal to) every other key.
    /// Initial `put` commands use this as their implicit trigger position.
    pub fn minimum() -> Self {
        OrderKey(Vec::new())
    }

    /// Number of levels in the key.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty (minimal) key.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// `self <= other` in the causal ordering. An empty key precedes
    /// everything, so initial puts can target any table.
    pub fn causally_le(&self, other: &OrderKey) -> bool {
        // The minimum key is a prefix of every key and prefixes order first.
        self.cmp(other) != Ordering::Greater || self.is_empty()
    }
}

impl PartialOrd for OrderKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderKey {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match p {
                KeyPart::Strat(r) => write!(f, "S{r}")?,
                KeyPart::Seq(v) => write!(f, "{v}")?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(parts: &[KeyPart]) -> OrderKey {
        OrderKey(parts.to_vec())
    }

    #[test]
    fn lexicographic_comparison() {
        let a = k(&[KeyPart::Strat(0), KeyPart::Seq(Value::Int(1))]);
        let b = k(&[KeyPart::Strat(0), KeyPart::Seq(Value::Int(2))]);
        let c = k(&[KeyPart::Strat(1), KeyPart::Seq(Value::Int(0))]);
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
    }

    #[test]
    fn prefix_orders_first() {
        let short = k(&[KeyPart::Strat(0)]);
        let long = k(&[KeyPart::Strat(0), KeyPart::Seq(Value::Int(0))]);
        assert!(short < long);
    }

    #[test]
    fn minimum_precedes_everything() {
        let min = OrderKey::minimum();
        let other = k(&[KeyPart::Strat(5)]);
        assert!(min < other);
        assert!(min.causally_le(&other));
        assert!(min.causally_le(&min.clone()));
    }

    #[test]
    fn equal_keys_are_one_equivalence_class() {
        let a = k(&[KeyPart::Strat(2), KeyPart::Seq(Value::Int(18))]);
        let b = k(&[KeyPart::Strat(2), KeyPart::Seq(Value::Int(18))]);
        assert_eq!(a.cmp(&b), Ordering::Equal);
        assert!(a.causally_le(&b) && b.causally_le(&a));
    }

    #[test]
    fn causally_le_rejects_past() {
        let early = k(&[KeyPart::Seq(Value::Int(3))]);
        let late = k(&[KeyPart::Seq(Value::Int(4))]);
        assert!(early.causally_le(&late));
        assert!(!late.causally_le(&early));
    }

    #[test]
    fn display_formats_key() {
        let key = k(&[KeyPart::Strat(1), KeyPart::Seq(Value::Int(7))]);
        assert_eq!(key.to_string(), "(S1, 7)");
    }

    #[test]
    fn component_constructors() {
        assert_eq!(strat("Int"), OrderComponent::Strat("Int".into()));
        assert_eq!(seq("frame"), OrderComponent::Seq("frame".into()));
        assert_eq!(par("row"), OrderComponent::Par("row".into()));
    }
}
