//! Coverage for the `jstar_table!` / `jstar_order!` macros: every column
//! type in both key and value position, every orderby component form
//! (`strat` literal, `seq`, `par`), the keyless-table case, and the
//! typed façade the item form generates.

use jstar_core::jstar_table;
use jstar_core::orderby::OrderComponent;
use jstar_core::prelude::*;
use std::sync::Arc;

jstar_table! {
    /// All four column types in *value* position, keyless, with every
    /// orderby component form: a stratum literal, a `seq` field and a
    /// `par` field.
    pub Mixed(int i, double d, String s, boolean b)
        orderby (MixedS, seq i, par b)
}

jstar_table! {
    /// All four column types in *key* position (multi-column `->` key).
    pub Keyed(int ki, double kd, String ks, boolean kb -> int v)
        orderby (KeyedS, seq ki)
}

jstar_table! {
    /// Keyless table without any orderby list (pure set semantics in
    /// one implicit class).
    pub Bare(String name, boolean flag)
}

jstar_table! {
    /// Single-column key split directly after the first column.
    #[derive(Copy, Eq)]
    pub Tick(int t -> int v) orderby (Int, seq t)
}

#[test]
fn item_form_schema_constants() {
    assert_eq!(Mixed::NAME, "Mixed");
    assert_eq!(Mixed::KEY_ARITY, None);
    assert_eq!(Mixed::COLUMNS.len(), 4);
    assert_eq!(Mixed::COLUMNS[0].ty, ValueType::Int);
    assert_eq!(Mixed::COLUMNS[1].ty, ValueType::Double);
    assert_eq!(Mixed::COLUMNS[2].ty, ValueType::Str);
    assert_eq!(Mixed::COLUMNS[3].ty, ValueType::Bool);
    assert_eq!(
        Mixed::orderby(),
        vec![strat("MixedS"), seq("i"), OrderComponent::Par("b".into())]
    );

    assert_eq!(Keyed::KEY_ARITY, Some(4), "key spans all four types");
    assert_eq!(Keyed::COLUMNS[4].name, "v");

    assert_eq!(Bare::KEY_ARITY, None);
    assert!(Bare::orderby().is_empty());

    assert_eq!(Tick::KEY_ARITY, Some(1));
}

#[test]
fn field_tokens_carry_index_and_name() {
    assert_eq!(Mixed::i.index(), 0);
    assert_eq!(Mixed::d.index(), 1);
    assert_eq!(Mixed::s.index(), 2);
    assert_eq!(Mixed::b.index(), 3);
    assert_eq!(Mixed::s.name(), "s");
    assert_eq!(Keyed::v.index(), 4);
    assert_eq!(Bare::flag.index(), 1);
}

#[test]
fn item_form_roundtrips_through_tuples() {
    let row = Mixed {
        i: 7,
        d: 2.5,
        s: Arc::from("hello"),
        b: true,
    };
    let values = row.clone().into_values();
    assert_eq!(
        values,
        vec![
            Value::Int(7),
            Value::Double(2.5),
            Value::str("hello"),
            Value::Bool(true),
        ]
    );
    let t = Tuple::new(TableId(0), values);
    assert_eq!(Mixed::from_tuple(&t), row);
}

#[test]
fn registration_matches_expression_form() {
    // The same declaration through both forms yields identical defs.
    let mut typed = ProgramBuilder::new();
    let th = typed.relation::<Keyed>();
    let typed_prog = typed.build().unwrap();

    let mut positional = ProgramBuilder::new();
    let pid = jstar_table!(positional, Keyed(int ki, double kd, String ks, boolean kb -> int v)
        orderby (KeyedS, seq ki));
    let positional_prog = positional.build().unwrap();

    let a = typed_prog.def(th.id());
    let b = positional_prog.def(pid);
    assert_eq!(a.name, b.name);
    assert_eq!(a.key_arity, b.key_arity);
    assert_eq!(a.orderby, b.orderby);
    assert_eq!(
        a.columns
            .iter()
            .map(|c| (&c.name, c.ty))
            .collect::<Vec<_>>(),
        b.columns
            .iter()
            .map(|c| (&c.name, c.ty))
            .collect::<Vec<_>>()
    );
}

#[test]
fn relation_registration_is_idempotent() {
    let mut p = ProgramBuilder::new();
    let a = p.relation::<Tick>();
    let b = p.relation::<Tick>();
    assert_eq!(a.id(), b.id());
    let prog = p.build().unwrap();
    assert_eq!(prog.relation_id::<Tick>(), Some(a.id()));
    assert_eq!(prog.relation_id::<Bare>(), None);
}

#[test]
fn typed_program_runs_end_to_end() {
    let mut p = ProgramBuilder::new();
    p.rule_rel("tick", |ctx, t: Tick| {
        if t.t < 3 {
            ctx.put_rel(Tick {
                t: t.t + 1,
                v: t.v * 2,
            });
        }
    });
    p.put_rel(Tick { t: 0, v: 1 });
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(prog, EngineConfig::sequential());
    engine.run().unwrap();
    let mut rows = engine.collect_rel(Tick::query());
    rows.sort_by_key(|r| r.t);
    assert_eq!(
        rows,
        vec![
            Tick { t: 0, v: 1 },
            Tick { t: 1, v: 2 },
            Tick { t: 2, v: 4 },
            Tick { t: 3, v: 8 },
        ]
    );
    // Typed range + filter queries lower to the same Gamma stores.
    let big = engine.collect_rel(Tick::query().ge(Tick::v, 4).filter(|t| t.t > 2));
    assert_eq!(big, vec![Tick { t: 3, v: 8 }]);
}

#[test]
fn typed_rule_ctx_entry_points() {
    let mut p = ProgramBuilder::new();
    let seen: Arc<parking_lot::Mutex<Vec<String>>> = Arc::default();
    let seen2 = Arc::clone(&seen);
    p.rule_rel("probe", move |ctx, t: Tick| {
        if t.t == 3 {
            // Everything before the trigger is visible in Gamma.
            let count = ctx.count_rel(Tick::query().lt(Tick::t, 3));
            let min = ctx.min_int_rel(Tick::query(), Tick::v);
            let max = ctx.max_int_rel(Tick::query(), Tick::v);
            let uniq = ctx.get_uniq_rel(Tick::query().eq(Tick::t, 0));
            let none = ctx.none_rel(Tick::query().eq(Tick::t, 99));
            seen2.lock().push(format!(
                "count={count} min={min:?} max={max:?} uniq={uniq:?} none={none}"
            ));
        } else {
            ctx.put_rel(Tick {
                t: t.t + 1,
                v: t.v + 10,
            });
        }
    });
    p.put_rel(Tick { t: 0, v: 1 });
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(prog, EngineConfig::sequential());
    engine.run().unwrap();
    let lines = seen.lock().clone();
    assert_eq!(lines.len(), 1);
    // The trigger tuple (t=3, v=31) is already in Gamma when its rules
    // fire, so the aggregate sees all four generations.
    assert!(
        lines[0].starts_with("count=3 min=Some(1) max=Some(31)"),
        "{lines:?}"
    );
    assert!(lines[0].ends_with("none=true"), "{lines:?}");
}

#[test]
fn prepared_queries_reuse_constraint_vectors() {
    let mut p = ProgramBuilder::new();
    let tick = p.relation::<Tick>();
    // The per-rule interning point: constant constraints lowered once,
    // outside the closure, reused by every invocation.
    let late = Tick::query().ge(Tick::t, 2).prepare(tick);
    let seen: Arc<parking_lot::Mutex<u64>> = Arc::default();
    let seen2 = Arc::clone(&seen);
    p.rule_rel("count-late", move |ctx, t: Tick| {
        if t.t < 3 {
            ctx.put_rel(Tick { t: t.t + 1, v: 0 });
        } else {
            *seen2.lock() = ctx.query_prepared(&late).len() as u64;
        }
    });
    p.put_rel(Tick { t: 0, v: 0 });
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(prog, EngineConfig::sequential());
    engine.run().unwrap();
    assert_eq!(*seen.lock(), 2, "t=2 and the t=3 trigger itself match");
}

#[test]
fn positional_out_of_bounds_field_is_a_named_error() {
    let mut p = ProgramBuilder::new();
    let tick = p.relation::<Tick>().id();
    p.rule("bad-query", tick, move |ctx, _t| {
        // Column 9 does not exist: the raw positional API can express
        // this; the engine reports it instead of panicking in a store.
        let _ = ctx.query(&Query::on(tick).eq(9, 1i64));
    });
    p.put(Tuple::new(tick, vec![Value::Int(0), Value::Int(0)]));
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(prog, EngineConfig::sequential());
    let err = engine.run().unwrap_err();
    assert_eq!(
        err,
        JStarError::NoSuchField {
            table: "Tick".into(),
            field: "#9".into(),
        },
        "{err}"
    );
}

#[test]
fn out_of_bounds_reducer_field_is_a_named_error() {
    let mut p = ProgramBuilder::new();
    p.rule_rel("bad-reduce", |ctx, t: Tick| {
        if t.t == 0 {
            // Tick has 2 columns; field 7 is the aggregate counterpart
            // of an out-of-bounds query constraint.
            let _ = ctx.reduce_rel(Tick::query(), &Statistics { field: 7 });
        }
    });
    p.put_rel(Tick { t: 0, v: 0 });
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(prog, EngineConfig::sequential());
    let err = engine.run().unwrap_err();
    assert_eq!(
        err,
        JStarError::NoSuchField {
            table: "Tick".into(),
            field: "#7".into(),
        },
        "{err}"
    );
}

#[test]
fn jstar_order_chains_still_work_with_relations() {
    let mut p = ProgramBuilder::new();
    let _ = p.relation::<Mixed>();
    let _ = p.relation::<Keyed>();
    jstar_core::jstar_order!(p, MixedS < KeyedS);
    let prog = p.build().unwrap();
    let a = prog.strata().lookup("MixedS").unwrap();
    let b = prog.strata().lookup("KeyedS").unwrap();
    assert!(prog.strata().declared_lt(a, b));
}

#[test]
fn duplicate_relation_name_is_a_build_error() {
    // A positional table and a relation with the same name collide.
    let mut p = ProgramBuilder::new();
    let _ = p.table("Tick", |b| b.col_int("x"));
    let _ = p.relation::<Tick>();
    let err = p.build().unwrap_err();
    assert_eq!(
        err,
        JStarError::DuplicateTable {
            table: "Tick".into()
        }
    );
}

// ── relation!{} — the typed façade over *existing* structs ──────────

/// A hand-written domain struct: carries its own derives and methods,
/// which `jstar_table!`'s item form could not have emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Quake {
    pub t: i64,
    pub magnitude_x10: i64,
    pub shallow: bool,
}

impl Quake {
    pub fn is_major(&self) -> bool {
        self.magnitude_x10 >= 70
    }
}

jstar_core::relation! {
    Quake(int t -> int magnitude_x10, boolean shallow)
        orderby (Int, seq t)
}

/// A decode-side view mapped onto a table declared under a different
/// name (the `as "Table"` form): same layout as `Tick`, different type.
#[derive(Debug, Clone, PartialEq)]
pub struct TickView {
    pub t: i64,
    pub v: i64,
}

jstar_core::relation! {
    TickView as "Tick" (int t -> int v) orderby (Int, seq t)
}

#[test]
fn relation_macro_schema_matches_jstar_table_form() {
    assert_eq!(Quake::NAME, "Quake");
    assert_eq!(Quake::KEY_ARITY, Some(1));
    assert_eq!(Quake::COLUMNS.len(), 3);
    assert_eq!(Quake::COLUMNS[1].name, "magnitude_x10");
    assert_eq!(Quake::COLUMNS[2].ty, ValueType::Bool);
    assert_eq!(Quake::orderby(), vec![strat("Int"), seq("t")]);
    // Field tokens address the right offsets.
    assert_eq!(Quake::t.index(), 0);
    assert_eq!(Quake::magnitude_x10.index(), 1);
    assert_eq!(Quake::shallow.index(), 2);
}

#[test]
fn relation_macro_roundtrips_through_tuples() {
    let q = Quake {
        t: 3,
        magnitude_x10: 81,
        shallow: true,
    };
    assert!(q.is_major(), "domain methods survive the macro");
    let tuple = Tuple::new(TableId(0), q.into_values());
    let back = Quake::from_tuple(&tuple);
    assert_eq!(back, q);
}

#[test]
fn relation_macro_struct_runs_end_to_end() {
    let mut p = ProgramBuilder::new();
    let _quakes = p.relation::<Quake>();
    p.rule_rel("aftershock", |ctx, q: Quake| {
        if q.is_major() && q.t < 5 {
            ctx.put_rel(Quake {
                t: q.t + 1,
                magnitude_x10: q.magnitude_x10 - 15,
                shallow: q.shallow,
            });
        }
    });
    p.put_rel(Quake {
        t: 0,
        magnitude_x10: 95,
        shallow: false,
    });
    let prog = Arc::new(p.build().unwrap());
    let mut eng = Engine::new(prog, EngineConfig::sequential());
    eng.run().unwrap();
    // 95 → 80 → 65 (not major): three rows.
    let all = eng.collect_rel(Quake::query());
    assert_eq!(all.len(), 3);
    let majors = eng.collect_rel(Quake::query().ge(Quake::magnitude_x10, 70i64));
    assert_eq!(majors.len(), 2);
}

#[test]
fn relation_as_form_decodes_a_foreign_tables_rows() {
    // `Tick` (jstar_table!-generated) owns the table; `TickView` maps
    // the same schema onto a hand-written struct under `as "Tick"`.
    assert_eq!(TickView::NAME, "Tick");
    assert_eq!(TickView::KEY_ARITY, Some(1));
    let tick = Tick { t: 7, v: 42 };
    let tuple = Tuple::new(TableId(0), tick.into_values());
    let view = TickView::from_tuple(&tuple);
    assert_eq!(view, TickView { t: 7, v: 42 });
    assert_eq!(TickView::v.index(), Tick::v.index());
}
