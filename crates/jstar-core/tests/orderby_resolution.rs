//! Orderby resolution and key-extraction edge cases.

use jstar_core::orderby::{par, seq, strat, KeyPart, ResolvedOrderBy};
use jstar_core::schema::{TableDefBuilder, TableId};
use jstar_core::strata::{StrataBuilder, StrataOrder};
use jstar_core::tuple::Tuple;
use jstar_core::value::Value;
use std::sync::Arc;

fn strata_with(names: &[&str]) -> StrataOrder {
    let mut b = StrataBuilder::new();
    for n in names {
        b.intern(n);
    }
    b.build().unwrap()
}

#[test]
fn resolve_maps_fields_and_literals() {
    let def = Arc::new(
        TableDefBuilder::standalone("T")
            .col_int("a")
            .col_int("b")
            .orderby(&[strat("Lit"), seq("b"), par("a")])
            .build_def(TableId(0)),
    );
    let strata = strata_with(&["Lit"]);
    let resolved = ResolvedOrderBy::resolve(&def, &strata).unwrap();
    assert_eq!(resolved.components.len(), 3);

    let t = Tuple::new(TableId(0), vec![Value::Int(10), Value::Int(20)]);
    let key = resolved.key_of(&t);
    // par truncates: key has the strat and the seq component only.
    assert_eq!(key.0.len(), 2);
    assert_eq!(key.0[1], KeyPart::Seq(Value::Int(20)));
}

#[test]
fn resolve_fails_on_unknown_literal() {
    let def = Arc::new(
        TableDefBuilder::standalone("T")
            .col_int("a")
            .orderby(&[strat("Nope")])
            .build_def(TableId(0)),
    );
    let strata = strata_with(&[]);
    let err = ResolvedOrderBy::resolve(&def, &strata).unwrap_err();
    assert!(err.contains("Nope"));
}

#[test]
fn resolve_fails_on_unknown_column() {
    let def = Arc::new(
        TableDefBuilder::standalone("T")
            .col_int("a")
            .orderby(&[seq("ghost")])
            .build_def(TableId(0)),
    );
    let strata = strata_with(&[]);
    let err = ResolvedOrderBy::resolve(&def, &strata).unwrap_err();
    assert!(err.contains("ghost"));
}

#[test]
fn empty_orderby_gives_minimal_keys() {
    let def = Arc::new(
        TableDefBuilder::standalone("T")
            .col_int("a")
            .build_def(TableId(0)),
    );
    let strata = strata_with(&[]);
    let resolved = ResolvedOrderBy::resolve(&def, &strata).unwrap();
    let t = Tuple::new(TableId(0), vec![Value::Int(1)]);
    assert!(resolved.key_of(&t).is_empty());
}

#[test]
fn everything_after_first_par_is_ignored() {
    // orderby (A, par x, seq y): y can never influence scheduling.
    let def = Arc::new(
        TableDefBuilder::standalone("T")
            .col_int("x")
            .col_int("y")
            .orderby(&[strat("A"), par("x"), seq("y")])
            .build_def(TableId(0)),
    );
    let strata = strata_with(&["A"]);
    let resolved = ResolvedOrderBy::resolve(&def, &strata).unwrap();
    let t1 = Tuple::new(TableId(0), vec![Value::Int(1), Value::Int(100)]);
    let t2 = Tuple::new(TableId(0), vec![Value::Int(2), Value::Int(-50)]);
    assert_eq!(resolved.key_of(&t1), resolved.key_of(&t2));
}

#[test]
fn same_seq_field_used_twice_is_allowed() {
    // Degenerate but legal: orderby (seq a, seq a).
    let def = Arc::new(
        TableDefBuilder::standalone("T")
            .col_int("a")
            .orderby(&[seq("a"), seq("a")])
            .build_def(TableId(0)),
    );
    let strata = strata_with(&[]);
    let resolved = ResolvedOrderBy::resolve(&def, &strata).unwrap();
    let t = Tuple::new(TableId(0), vec![Value::Int(3)]);
    let key = resolved.key_of(&t);
    assert_eq!(key.0.len(), 2);
    assert_eq!(key.0[0], key.0[1]);
}
