//! Determinism property tests for the engine's sharded hot path.
//!
//! The engine rewrite (sharded staging inbox, bulk drain, borrowed
//! trigger keys, adaptive scheduling) must not be observable in results:
//! for random rule programs, the parallel engine's final Gamma contents
//! must equal the sequential engine's, whatever the thread count, chunk
//! decisions, or shard interleavings. This is the paper's core promise —
//! "parallel execution is deterministic" (§4–5) — restated as a property.

use jstar_core::delta::DeltaKind;
use jstar_core::jstar_table;
use jstar_core::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

jstar_table! {
    /// Probe-side dimension table for the join-program generator.
    #[derive(Copy, Eq)]
    pub Dim(int k, int w) orderby (Dim)
}

jstar_table! {
    /// Trigger of the first join stage; one wide equivalence class.
    #[derive(Copy, Eq)]
    pub Src(int k, int v) orderby (Src)
}

jstar_table! {
    /// Output of stage 1, trigger of stage 2.
    #[derive(Copy, Eq)]
    pub Mid(int k2, int s) orderby (Mid)
}

jstar_table! {
    /// Final join output.
    #[derive(Copy, Eq)]
    pub Out(int a, int b) orderby (Out)
}

/// A randomly shaped layered rule program:
///
/// * `layers` tables `T0 < T1 < ... < T{layers-1}` (strat-ordered), each
///   with a `seq t` time column and a value column;
/// * per layer, a rule that maps each `(t, v)` tuple of layer `i` to
///   `fanout` tuples of layer `i + 1` with value `(v * mul + add) % modp`
///   and time `t + dt` — dt ≥ 0 keeps the program causal;
/// * a same-layer advance rule on layer 0 bounded by `horizon`, so one
///   table also feeds itself through the Delta set;
/// * `seeds` initial tuples at layer 0.
///
/// Duplicate tuples arise naturally from the modulus, exercising the
/// set-semantics dedup paths in both the inbox drain and Gamma.
#[allow(clippy::too_many_arguments)]
fn build_program(
    layers: usize,
    fanout: i64,
    mul: i64,
    add: i64,
    modp: i64,
    dt: i64,
    horizon: i64,
    seeds: i64,
) -> Arc<Program> {
    let mut p = ProgramBuilder::new();
    let names: Vec<String> = (0..layers).map(|i| format!("T{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let ids: Vec<TableId> = names
        .iter()
        .map(|n| {
            p.table(n, |b| {
                b.col_int("t").col_int("v").orderby(&[strat(n), seq("t")])
            })
        })
        .collect();
    p.order(&name_refs);

    for i in 0..layers.saturating_sub(1) {
        let next = ids[i + 1];
        p.rule(&format!("fan{i}"), ids[i], move |ctx, tr| {
            for k in 0..fanout {
                let v = (tr.int(1) * mul + add + k).rem_euclid(modp);
                ctx.put(Tuple::new(
                    next,
                    vec![Value::Int(tr.int(0) + dt), Value::Int(v)],
                ));
            }
        });
    }
    let t0 = ids[0];
    p.rule("advance", t0, move |ctx, tr| {
        if tr.int(0) < horizon {
            ctx.put(Tuple::new(
                t0,
                vec![
                    Value::Int(tr.int(0) + 1),
                    Value::Int((tr.int(1) + 1) % modp),
                ],
            ));
        }
    });
    for s in 0..seeds {
        p.put(Tuple::new(t0, vec![Value::Int(0), Value::Int(s % modp)]));
    }
    Arc::new(p.build().unwrap())
}

/// A fig12 (Dijkstra)-shaped relaxation program on a deterministic
/// pseudo-random graph: `Estimate(vertex, distance)` self-feeds through
/// the Delta tree (which acts as the priority queue, ordered by
/// distance) and finalises into keyed `Done(vertex -> distance)`
/// tuples. Edges are a pure function of `(vertex, j)`, so every engine
/// configuration explores the same graph.
fn relaxation_program(n: i64, degree: i64, weight_mod: i64) -> Arc<Program> {
    let mut p = ProgramBuilder::new();
    let estimate = p.table("Estimate", |b| {
        b.col_int("vertex").col_int("distance").orderby(&[
            strat("Int"),
            seq("distance"),
            strat("Estimate"),
        ])
    });
    let done = p.table("Done", |b| {
        b.col_int("vertex").col_int("distance").key(1).orderby(&[
            strat("Int"),
            seq("distance"),
            strat("Done"),
        ])
    });
    p.order(&["Estimate", "Done"]);
    p.rule("relax", estimate, move |ctx, tr| {
        let (v, d) = (tr.int(0), tr.int(1));
        if ctx.none(&Query::on(done).eq(0, v).le(1, d)) {
            ctx.put(Tuple::new(done, vec![Value::Int(v), Value::Int(d)]));
            for j in 0..degree {
                let to = (v * 7919 + j * 104_729 + 13).rem_euclid(n);
                let w = 1 + (v + j * 31).rem_euclid(weight_mod);
                if ctx.none(&Query::on(done).eq(0, to)) {
                    ctx.put(Tuple::new(
                        estimate,
                        vec![Value::Int(to), Value::Int(d + w)],
                    ));
                }
            }
        }
    });
    p.put(Tuple::new(estimate, vec![Value::Int(0), Value::Int(0)]));
    Arc::new(p.build().unwrap())
}

/// A two-stage join program whose trigger classes are wide (no `seq`
/// columns), so the batched delta-join pass has something to batch:
///
/// * `Dim` is the probe-side table (popped first, no rules);
/// * `Src ⋈ Dim` on `k` with a residual filter feeds `Mid`;
/// * `Mid ⋈ Dim` on the derived key feeds `Out`;
/// * an *opaque* rule also triggers on `Src`, so delta-join classes mix
///   planned and per-tuple rule execution in one pop.
fn join_program(dims: i64, srcs: i64, key_mod: i64, filt: i64) -> Arc<Program> {
    let mut p = ProgramBuilder::new();
    p.relation::<Dim>();
    p.relation::<Src>();
    p.relation::<Mid>();
    p.relation::<Out>();
    p.order(&["Dim", "Src", "Mid", "Out"]);
    p.rule_rel_join(
        "stage1",
        JoinOn::new().eq(Src::k, Dim::k),
        move |s: &Src, d: &Dim| (s.v + d.w).rem_euclid(filt) != 0,
        move |ctx, s: &Src, d: &Dim| {
            ctx.put_rel(Mid {
                k2: (s.v * 3 + d.w).rem_euclid(key_mod),
                s: s.v + d.w,
            });
        },
    );
    p.rule_rel_join(
        "stage2",
        JoinOn::new().eq(Mid::k2, Dim::k),
        |_m: &Mid, _d: &Dim| true,
        |ctx, m: &Mid, d: &Dim| {
            ctx.put_rel(Out { a: m.s, b: d.w });
        },
    );
    p.rule_rel("mirror", |ctx, s: Src| {
        ctx.put_rel(Out { a: s.v, b: -1 });
    });
    for i in 0..dims {
        p.put_rel(Dim {
            k: i.rem_euclid(key_mod),
            w: i,
        });
    }
    for i in 0..srcs {
        p.put_rel(Src {
            k: (i * 7).rem_euclid(key_mod),
            v: i,
        });
    }
    Arc::new(p.build().unwrap())
}

/// A two-**stage** join program built in one of two lowerings that must
/// be observationally identical:
///
/// * `nested_loop = false` — one [`ProgramBuilder::rule_rel_join2`]
///   rule carrying the full two-stage [`jstar_core::rule::JoinPlan`]
///   (`Src ⋈ Dim` on `k`, then `⋈ Dim` again on the first match's `w`),
///   eligible for batched delta-join execution and the leapfrog walk;
/// * `nested_loop = true` — a hand-written opaque rule performing the
///   same join as two nested `ctx.query_rel` loops, invisible to every
///   join optimisation.
///
/// Tables, orderings, seeds and the filter are identical, so the two
/// programs must reach the same fixpoint with the same pop schedule.
fn join2_program(dims: i64, srcs: i64, key_mod: i64, filt: i64, nested_loop: bool) -> Arc<Program> {
    let mut p = ProgramBuilder::new();
    p.relation::<Dim>();
    p.relation::<Src>();
    p.relation::<Out>();
    p.order(&["Dim", "Src", "Out"]);
    let filter = move |s: &Src, d1: &Dim, d2: &Dim| (s.v + d1.w + d2.w).rem_euclid(filt) != 0;
    let emit = move |s: &Src, d1: &Dim, d2: &Dim| Out {
        a: s.v + d1.w,
        b: d2.w,
    };
    if nested_loop {
        p.rule_rel("chain-nested", move |ctx, s: Src| {
            for d1 in ctx.query_rel(Dim::query().eq(Dim::k, s.k)) {
                for d2 in ctx.query_rel(Dim::query().eq(Dim::k, d1.w)) {
                    if filter(&s, &d1, &d2) {
                        ctx.put_rel(emit(&s, &d1, &d2));
                    }
                }
            }
        });
    } else {
        p.rule_rel_join2(
            "chain-join",
            JoinOn::new().eq(Src::k, Dim::k),
            JoinOn2::new().eq_p(Dim::w, Dim::k),
            filter,
            move |ctx, s: &Src, d1: &Dim, d2: &Dim| {
                ctx.put_rel(emit(s, d1, d2));
            },
        );
    }
    // `w` values overlap the key range so stage 2 matches regularly
    // (but not always — missing keys exercise the empty-descent path).
    for i in 0..dims {
        p.put_rel(Dim {
            k: i.rem_euclid(key_mod),
            w: (i * 5 + 1).rem_euclid(key_mod + 3),
        });
    }
    for i in 0..srcs {
        p.put_rel(Src {
            k: (i * 7).rem_euclid(key_mod),
            v: i,
        });
    }
    Arc::new(p.build().unwrap())
}

/// Collects every Gamma tuple of every table, sorted — the canonical form
/// compared across engine configurations.
fn canonical_gamma(engine: &Engine) -> Vec<Tuple> {
    let mut all = Vec::new();
    for i in 0..engine.program().defs().len() {
        all.extend(engine.gamma().collect(&Query::on(TableId(i as u32))));
    }
    all.sort();
    all
}

/// Walks a fresh field-0 cursor over every table and collects the visible
/// `(value, group)` pairs — what a join walk would actually see through
/// the index cache. Group-internal order is journal (insertion) order,
/// which differs across runs at different thread counts, so groups are
/// sorted before comparison; the *set* of values and each value's tuple
/// multiset must be identical whatever the cache policy.
fn cursor_groups(engine: &Engine) -> Vec<(Value, Vec<Tuple>)> {
    let mut all = Vec::new();
    for i in 0..engine.program().defs().len() {
        let idx = engine.gamma().open_cursor(TableId(i as u32), 0);
        let mut c = idx.cursor();
        while let (Some(k), Some(g)) = (c.key(), c.group()) {
            let mut g = g.to_vec();
            g.sort();
            all.push((k.clone(), g));
            c.next();
        }
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sharded-inbox parallel engine produces exactly the sequential
    /// engine's fixpoint for random programs, thread counts, and inline
    /// thresholds.
    #[test]
    fn sharded_parallel_matches_sequential(
        layers in 1usize..4,
        fanout in 1i64..4,
        mul in 1i64..7,
        add in 0i64..5,
        modp in 2i64..40,
        dt in 0i64..3,
        horizon in 0i64..12,
        seeds in 1i64..6,
        threads in 1usize..5,
        inline_threshold in 0usize..8,
    ) {
        let prog = build_program(layers, fanout, mul, add, modp, dt, horizon, seeds);

        let mut seq_eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
        let seq_report = seq_eng.run().unwrap();
        let want = canonical_gamma(&seq_eng);

        let par_config = EngineConfig::parallel(threads).inline_classes_up_to(inline_threshold);
        let mut par_eng = Engine::new(Arc::clone(&prog), par_config);
        let par_report = par_eng.run().unwrap();
        let got = canonical_gamma(&par_eng);

        prop_assert_eq!(&got, &want, "gamma contents diverged");
        prop_assert_eq!(
            par_report.tuples_processed,
            seq_report.tuples_processed,
            "tuple counts diverged"
        );
    }

    /// The pipelined coordinator (`pipeline_depth = 1`: epoch swaps and
    /// background-lane merges overlapped with class execution) reaches
    /// exactly the fixpoint of the alternating loop (`pipeline_depth =
    /// 0`): identical Gamma contents, tuple counts and step counts, for
    /// random fan-out programs (fig8's request→fan→summarise shape and
    /// fig11's wide single-key classes both arise from the generator),
    /// thread counts and scheduling knobs. The merge threshold is
    /// dropped to 1 so even small epochs take the parallel subtree
    /// path, and the inline threshold varies so wide classes actually
    /// open the overlap window.
    #[test]
    fn pipelined_matches_alternating(
        layers in 1usize..4,
        fanout in 1i64..5,
        mul in 1i64..7,
        add in 0i64..5,
        modp in 2i64..40,
        dt in 0i64..3,
        horizon in 0i64..12,
        seeds in 1i64..6,
        threads in 2usize..6,
        inline_threshold in 0usize..4,
    ) {
        let prog = build_program(layers, fanout, mul, add, modp, dt, horizon, seeds);

        let mut off = Engine::new(
            Arc::clone(&prog),
            EngineConfig::parallel(threads)
                .pipeline_depth(0)
                .inline_classes_up_to(inline_threshold),
        );
        let off_report = off.run().unwrap();
        let want = canonical_gamma(&off);

        let mut on = Engine::new(
            Arc::clone(&prog),
            EngineConfig::parallel(threads)
                .pipeline_depth(1)
                .inline_classes_up_to(inline_threshold)
                .parallel_merge_from(1),
        );
        let on_report = on.run().unwrap();
        let got = canonical_gamma(&on);

        prop_assert_eq!(&got, &want, "gamma contents diverged across pipeline depths");
        prop_assert_eq!(
            on_report.tuples_processed,
            off_report.tuples_processed,
            "tuple counts diverged across pipeline depths"
        );
        prop_assert_eq!(
            on_report.steps,
            off_report.steps,
            "pop schedules diverged across pipeline depths"
        );
    }

    /// The lookahead step machine (`pipeline_depth ≥ 2`: epoch ring,
    /// pre-extracted next class, speculative plans) produces
    /// **bit-identical pop schedules** to the alternating loop: same
    /// step count, same tuple count, same Gamma fixpoint, at depths 0,
    /// 1, 2 and 4 — for random layered fan-out programs whose `dt = 0`
    /// arms stage tuples *at the prepared class's own key* (the extend
    /// case) and whose same-layer advance rule stages keys that order
    /// below later layers' prepared classes (the invalidate case).
    /// Inline thresholds vary so wide classes actually open the
    /// speculation window.
    #[test]
    fn lookahead_matches_alternating(
        layers in 1usize..4,
        fanout in 1i64..5,
        mul in 1i64..7,
        add in 0i64..5,
        modp in 2i64..40,
        dt in 0i64..3,
        horizon in 0i64..12,
        seeds in 1i64..6,
        threads in 2usize..6,
        inline_threshold in 0usize..4,
    ) {
        let prog = build_program(layers, fanout, mul, add, modp, dt, horizon, seeds);

        let mut base = Engine::new(
            Arc::clone(&prog),
            EngineConfig::parallel(threads)
                .pipeline_depth(0)
                .inline_classes_up_to(inline_threshold),
        );
        let base_report = base.run().unwrap();
        let want = canonical_gamma(&base);

        for depth in [1usize, 2, 4] {
            let mut eng = Engine::new(
                Arc::clone(&prog),
                EngineConfig::parallel(threads)
                    .pipeline_depth(depth)
                    .inline_classes_up_to(inline_threshold)
                    .parallel_merge_from(1),
            );
            let report = eng.run().unwrap();
            prop_assert_eq!(
                report.pipeline_depth,
                depth,
                "effective depth must report the configured depth"
            );
            let got = canonical_gamma(&eng);
            prop_assert_eq!(&got, &want, "gamma contents diverged at depth {}", depth);
            prop_assert_eq!(
                report.tuples_processed,
                base_report.tuples_processed,
                "tuple counts diverged at depth {}",
                depth
            );
            prop_assert_eq!(
                report.steps,
                base_report.steps,
                "pop schedules diverged at depth {}",
                depth
            );
        }
    }

    /// Lookahead determinism under adversarial merges: the fig12
    /// relaxation shape, where popping distance `d` stages Estimates at
    /// `d + w` — keys that routinely order **below** the prepared next
    /// class (invalidating it) or **at** it (extending it). The Done
    /// set must be identical at depths 0/1/2/4 and equal to the
    /// sequential run's, with both the adaptive and the fixed overlap
    /// controller.
    #[test]
    fn lookahead_survives_adversarial_relaxation(
        n in 20i64..120,
        degree in 1i64..4,
        weight_mod in 1i64..9,
        threads in 2usize..6,
        adaptive_arm in 0usize..2,
    ) {
        let adaptive = adaptive_arm == 1;
        let prog = relaxation_program(n, degree, weight_mod);
        let done = prog.table_id("Done").unwrap();
        let estimate = prog.table_id("Estimate").unwrap();
        let configure = |c: EngineConfig| {
            c.no_delta(done).no_gamma(estimate).store(
                done,
                StoreKind::Hash {
                    index_fields: vec!["vertex".into()],
                    shards: 8,
                },
            )
        };

        let mut seq_eng = Engine::new(
            Arc::clone(&prog),
            configure(EngineConfig::sequential()),
        );
        let seq_report = seq_eng.run().unwrap();
        prop_assert_eq!(seq_report.pipeline_depth, 0, "sequential mode has no pipeline");
        let mut want = seq_eng.gamma().collect(&Query::on(done));
        want.sort();

        for depth in [0usize, 1, 2, 4] {
            let mut eng = Engine::new(
                Arc::clone(&prog),
                configure(
                    EngineConfig::parallel(threads)
                        .pipeline_depth(depth)
                        .adaptive_overlap(adaptive)
                        .inline_classes_up_to(0)
                        .parallel_merge_from(1),
                ),
            );
            let report = eng.run().unwrap();
            let mut got = eng.gamma().collect(&Query::on(done));
            got.sort();
            // Step counts are not compared here: the relax rule *queries*
            // Done mid-class, so which Estimates get staged is timing-
            // dependent in every parallel configuration (the fixpoint is
            // not). The bit-identical pop schedule proof lives in
            // `lookahead_matches_alternating`, whose programs stage
            // deterministically.
            prop_assert_eq!(&got, &want, "Done set diverged at depth {}", depth);
            if depth < 2 {
                prop_assert_eq!(
                    report.lookahead_hits + report.lookahead_misses,
                    0,
                    "lookahead must stay disarmed below depth 2"
                );
            }
        }
    }

    /// Pipeline determinism on the fig12 (Dijkstra) shape: a
    /// self-feeding relaxation whose orderby makes the Delta tree the
    /// priority queue, with `-noDelta`/hash-indexed Done and `-noGamma`
    /// Estimate exactly like the real app. The final Done set must be
    /// identical at both pipeline depths and equal to the sequential
    /// run's.
    #[test]
    fn pipelined_dijkstra_shape_is_deterministic(
        n in 20i64..120,
        degree in 1i64..4,
        weight_mod in 1i64..9,
        threads in 2usize..6,
    ) {
        let prog = relaxation_program(n, degree, weight_mod);
        let done = prog.table_id("Done").unwrap();
        let estimate = prog.table_id("Estimate").unwrap();
        let configure = |c: EngineConfig| {
            c.no_delta(done).no_gamma(estimate).store(
                done,
                StoreKind::Hash {
                    index_fields: vec!["vertex".into()],
                    shards: 8,
                },
            )
        };

        let mut seq_eng = Engine::new(
            Arc::clone(&prog),
            configure(EngineConfig::sequential()),
        );
        seq_eng.run().unwrap();
        let mut want = seq_eng.gamma().collect(&Query::on(done));
        want.sort();

        for depth in [0usize, 1] {
            let mut eng = Engine::new(
                Arc::clone(&prog),
                configure(
                    EngineConfig::parallel(threads)
                        .pipeline_depth(depth)
                        .inline_classes_up_to(0)
                        .parallel_merge_from(1),
                ),
            );
            eng.run().unwrap();
            let mut got = eng.gamma().collect(&Query::on(done));
            got.sort();
            prop_assert_eq!(&got, &want, "Done set diverged at depth {}", depth);
        }
    }

    /// The persisted Gamma digest is a pure function of the logical
    /// fixpoint: for random programs, `Engine::content_hash()` — the
    /// hash a snapshot stores per table and recovery compares against —
    /// is bit-identical across the sequential engine and every
    /// (threads × pipeline depth 0/1/2/4) parallel configuration. This
    /// is what makes crash-recovery checkable: restore + resume must
    /// land on this exact hash whatever configuration resumes the run.
    #[test]
    fn content_hash_is_identical_across_configurations(
        layers in 1usize..4,
        fanout in 1i64..4,
        mul in 1i64..7,
        add in 0i64..5,
        modp in 2i64..40,
        dt in 0i64..3,
        horizon in 0i64..12,
        seeds in 1i64..6,
        threads in 2usize..6,
    ) {
        let prog = build_program(layers, fanout, mul, add, modp, dt, horizon, seeds);

        let mut seq_eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
        seq_eng.run().unwrap();
        let want = seq_eng.content_hash();

        for depth in [0usize, 1, 2, 4] {
            let mut eng = Engine::new(
                Arc::clone(&prog),
                EngineConfig::parallel(threads)
                    .pipeline_depth(depth)
                    .inline_classes_up_to(0)
                    .parallel_merge_from(1),
            );
            eng.run().unwrap();
            prop_assert_eq!(
                eng.content_hash(),
                want,
                "content hash diverged at {} threads, depth {}",
                threads,
                depth
            );
        }
    }

    /// Semi-naive delta-join execution is a pure execution-strategy
    /// change: for random two-stage join programs, the batched mode
    /// (grouped Gamma probes per class) produces **bit-identical pop
    /// schedules** to per-tuple firing — same step count, same tuple
    /// count, same Gamma fixpoint, same content hash — sequentially and
    /// at every thread count, with the opaque `mirror` rule riding in
    /// the same trigger classes.
    #[test]
    fn delta_join_matches_per_tuple(
        dims in 1i64..30,
        srcs in 1i64..40,
        key_mod in 1i64..12,
        filt in 1i64..6,
        threads in 2usize..6,
        threshold in 1usize..8,
    ) {
        let prog = join_program(dims, srcs, key_mod, filt);

        let mut base = Engine::new(
            Arc::clone(&prog),
            EngineConfig::sequential().delta_join_from(usize::MAX),
        );
        let base_report = base.run().unwrap();
        prop_assert_eq!(base_report.delta_join_classes, 0, "per-tuple baseline");
        let want = canonical_gamma(&base);
        let want_hash = base.content_hash();

        // Both join strategies must be invisible: the leapfrog walk
        // (default) and the PR 8 hash-probe pass are pure execution-
        // strategy changes over the same canonical staging.
        let configs = [
            EngineConfig::sequential().delta_join_from(threshold),
            EngineConfig::sequential()
                .join_strategy(JoinStrategy::HashProbe)
                .delta_join_from(threshold),
            EngineConfig::parallel(threads).delta_join_from(threshold),
            EngineConfig::parallel(threads)
                .join_strategy(JoinStrategy::HashProbe)
                .delta_join_from(threshold),
            EngineConfig::parallel(threads)
                .pipeline_depth(2)
                .parallel_merge_from(1)
                .delta_join_from(threshold),
        ];
        for (i, config) in configs.into_iter().enumerate() {
            let mut eng = Engine::new(Arc::clone(&prog), config);
            let report = eng.run().unwrap();
            let got = canonical_gamma(&eng);
            prop_assert_eq!(&got, &want, "gamma contents diverged (config {})", i);
            prop_assert_eq!(
                report.steps,
                base_report.steps,
                "pop schedules diverged (config {})",
                i
            );
            prop_assert_eq!(
                report.tuples_processed,
                base_report.tuples_processed,
                "tuple counts diverged (config {})",
                i
            );
            prop_assert_eq!(
                eng.content_hash(),
                want_hash,
                "content hash diverged (config {})",
                i
            );
            // The Src class is one wide equivalence class of `srcs`
            // distinct tuples, so batching must engage whenever it
            // clears the threshold.
            if srcs as usize >= threshold {
                prop_assert!(
                    report.delta_join_classes > 0,
                    "delta-join never engaged (config {}): {:?}",
                    i,
                    report
                );
                prop_assert!(report.delta_join_build_tuples >= srcs as u64);
            }
        }
    }

    /// `join()` lowering equivalence: for random two-stage join
    /// programs, the typed join-rule lowering (two-stage plan, batched
    /// delta-join eligible, leapfrog or hash strategy) produces exactly
    /// the hand-written nested-loop lowering's results — same Gamma
    /// fixpoint, same content hash, and **bit-identical pop schedules**
    /// — sequentially, in parallel, and under the depth-2 pipelined
    /// coordinator.
    #[test]
    fn typed_join_matches_nested_loop_lowering(
        dims in 1i64..25,
        srcs in 1i64..30,
        key_mod in 1i64..10,
        filt in 1i64..6,
        threads in 2usize..6,
        threshold in 1usize..8,
    ) {
        let nested = join2_program(dims, srcs, key_mod, filt, true);
        let joined = join2_program(dims, srcs, key_mod, filt, false);

        let mut reference = Engine::new(Arc::clone(&nested), EngineConfig::sequential());
        let ref_report = reference.run().unwrap();
        let want = canonical_gamma(&reference);
        let want_hash = reference.content_hash();

        let configs = [
            EngineConfig::sequential().delta_join_from(threshold),
            EngineConfig::sequential()
                .join_strategy(JoinStrategy::HashProbe)
                .delta_join_from(threshold),
            EngineConfig::parallel(threads).delta_join_from(threshold),
            EngineConfig::parallel(threads)
                .pipeline_depth(2)
                .parallel_merge_from(1)
                .delta_join_from(threshold),
        ];
        for (i, config) in configs.into_iter().enumerate() {
            let mut eng = Engine::new(Arc::clone(&joined), config);
            let report = eng.run().unwrap();
            let got = canonical_gamma(&eng);
            prop_assert_eq!(&got, &want, "lowerings diverged (config {})", i);
            prop_assert_eq!(
                eng.content_hash(),
                want_hash,
                "content hash diverged from nested-loop lowering (config {})",
                i
            );
            prop_assert_eq!(
                report.steps,
                ref_report.steps,
                "pop schedules diverged from nested-loop lowering (config {})",
                i
            );
            prop_assert_eq!(
                report.tuples_processed,
                ref_report.tuples_processed,
                "tuple counts diverged from nested-loop lowering (config {})",
                i
            );
        }
    }

    /// The generation-stamped index cache is a pure execution-strategy
    /// change: for random two-stage join programs — with a lifetime hint
    /// on the probe table so retain/compaction interleaves with the join
    /// walks mid-run — every cache policy (`Off`, `OnDemand`,
    /// `EagerRefresh`) produces **bit-identical pop schedules** (same
    /// step count, same tuple count), the same Gamma fixpoint, the same
    /// content hash, and the same cursor-visible group sets, at 1/4/8
    /// threads × pipeline depths 0/1/2. The hint tombstones (and, past
    /// the compaction threshold, epoch-bumps) the very table whose
    /// cached views the join keeps reopening, so wholesale invalidation
    /// and journal-suffix catch-up both run under live traffic.
    #[test]
    fn cached_index_matches_cold_build(
        dims in 4i64..30,
        srcs in 1i64..40,
        key_mod in 1i64..12,
        filt in 1i64..6,
        threshold in 1usize..8,
        threads_idx in 0usize..3,
        hint_keep_mod in 2i64..5,
    ) {
        let threads = [1usize, 4, 8][threads_idx];
        let prog = join_program(dims, srcs, key_mod, filt);
        let dim = prog.table_id("Dim").unwrap();
        // Dim has no producing rules, so retaining away some of its
        // tuples mid-run is deterministic (nothing re-derives them) and
        // directly invalidates the cached views the join walks reopen.
        let configure = move |c: EngineConfig| {
            c.delta_join_from(threshold)
                .lifetime_hint(dim, 2, move |t| t.int(1).rem_euclid(hint_keep_mod) != 0)
                .compact_tombstones_above(0.2)
        };

        let mut base = Engine::new(
            Arc::clone(&prog),
            configure(EngineConfig::sequential().index_cache(IndexCachePolicy::Off)),
        );
        let base_report = base.run().unwrap();
        let want = canonical_gamma(&base);
        let want_hash = base.content_hash();
        let want_groups = cursor_groups(&base);

        for depth in [0usize, 1, 2] {
            for policy in [
                IndexCachePolicy::Off,
                IndexCachePolicy::OnDemand,
                IndexCachePolicy::EagerRefresh,
            ] {
                let config = if threads == 1 && depth == 0 {
                    EngineConfig::sequential()
                } else {
                    EngineConfig::parallel(threads)
                        .pipeline_depth(depth)
                        .parallel_merge_from(1)
                };
                let mut eng = Engine::new(
                    Arc::clone(&prog),
                    configure(config.index_cache(policy)),
                );
                let report = eng.run().unwrap();
                let got = canonical_gamma(&eng);
                prop_assert_eq!(
                    &got, &want,
                    "gamma diverged ({:?}, {} threads, depth {})",
                    policy, threads, depth
                );
                prop_assert_eq!(
                    eng.content_hash(),
                    want_hash,
                    "content hash diverged ({:?}, {} threads, depth {})",
                    policy, threads, depth
                );
                prop_assert_eq!(
                    (report.steps, report.tuples_processed),
                    (base_report.steps, base_report.tuples_processed),
                    "pop schedule diverged ({:?}, {} threads, depth {})",
                    policy, threads, depth
                );
                let groups = cursor_groups(&eng);
                prop_assert_eq!(
                    &groups, &want_groups,
                    "cursor-visible groups diverged ({:?}, {} threads, depth {})",
                    policy, threads, depth
                );
                if policy == IndexCachePolicy::Off {
                    prop_assert_eq!(
                        report.index_cache_hits, 0,
                        "off policy must never hit"
                    );
                }
            }
        }
    }

    /// Both Delta structures reach the same fixpoint under the batched
    /// drain (the flat map is the ablation of the tree).
    #[test]
    fn delta_kinds_agree_under_parallel_drain(
        layers in 1usize..3,
        fanout in 1i64..4,
        modp in 2i64..25,
        horizon in 0i64..10,
        threads in 1usize..4,
    ) {
        let prog = build_program(layers, fanout, 3, 1, modp, 1, horizon, 2);
        let mut tree_eng = Engine::new(
            Arc::clone(&prog),
            EngineConfig::parallel(threads).delta_kind(DeltaKind::Tree),
        );
        tree_eng.run().unwrap();
        let mut flat_eng = Engine::new(
            Arc::clone(&prog),
            EngineConfig::parallel(threads).delta_kind(DeltaKind::Flat),
        );
        flat_eng.run().unwrap();
        prop_assert_eq!(canonical_gamma(&tree_eng), canonical_gamma(&flat_eng));
    }
}
