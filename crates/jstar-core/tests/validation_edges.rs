//! Edge cases in program construction, orderby resolution, store
//! configuration and error reporting.

use jstar_core::gamma::StoreKind;
use jstar_core::prelude::*;
use std::sync::Arc;

#[test]
fn orderby_seq_on_missing_column_is_a_build_error() {
    let mut p = ProgramBuilder::new();
    let _ = p.table("T", |b| b.col_int("a").orderby(&[seq("missing")]));
    let err = p.build().unwrap_err();
    assert!(matches!(err, JStarError::Stratification(_)));
    assert!(err.to_string().contains("missing"));
}

#[test]
fn orderby_par_on_missing_column_is_a_build_error() {
    let mut p = ProgramBuilder::new();
    let _ = p.table("T", |b| b.col_int("a").orderby(&[par("missing")]));
    assert!(p.build().is_err());
}

#[test]
fn empty_program_runs_to_empty_fixpoint() {
    let p = ProgramBuilder::new();
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
    let report = engine.run().unwrap();
    assert_eq!(report.steps, 0);
    assert_eq!(report.tuples_processed, 0);
}

#[test]
fn program_with_tables_but_no_rules_just_stores_initial_puts() {
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| b.col_int("x").orderby(&[seq("x")]));
    for i in 0..5 {
        p.put(Tuple::new(t, vec![Value::Int(i)]));
    }
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(prog, EngineConfig::parallel(2));
    let report = engine.run().unwrap();
    assert_eq!(engine.gamma().total_len(), 5);
    assert!(report.steps >= 1);
}

#[test]
fn store_kind_debug_formats() {
    assert_eq!(format!("{:?}", StoreKind::Ordered), "Ordered");
    assert!(format!("{:?}", StoreKind::ConcurrentOrdered { shards: 4 }).contains("4 shards"));
    assert!(format!(
        "{:?}",
        StoreKind::Hash {
            index_fields: vec!["x".into()],
            shards: 2
        }
    )
    .contains("index"));
}

#[test]
fn duplicate_initial_puts_are_deduplicated() {
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| b.col_int("x").orderby(&[seq("x")]));
    for _ in 0..10 {
        p.put(Tuple::new(t, vec![Value::Int(7)]));
    }
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(prog, EngineConfig::sequential());
    engine.run().unwrap();
    assert_eq!(engine.gamma().total_len(), 1, "set semantics from step one");
}

#[test]
fn rules_on_same_trigger_all_fire() {
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| b.col_int("x").orderby(&[seq("x")]));
    p.rule("first", t, |ctx, tr| ctx.println(format!("a{}", tr.int(0))));
    p.rule("second", t, |ctx, tr| {
        ctx.println(format!("b{}", tr.int(0)))
    });
    p.put(Tuple::new(t, vec![Value::Int(1)]));
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(prog, EngineConfig::sequential());
    let mut out = engine.run().unwrap().output;
    out.sort();
    assert_eq!(out, vec!["a1", "b1"]);
}

#[test]
fn disabling_runtime_checks_is_possible_but_discouraged() {
    // The paper's generated code trusts the static proof; our runtime
    // check can be disabled to measure its cost — the program then runs
    // (incorrectly ordered puts are accepted).
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| b.col_int("x").orderby(&[seq("x")]));
    p.rule("backwards", t, move |ctx, tr| {
        if tr.int(0) == 5 {
            ctx.put(Tuple::new(t, vec![Value::Int(1)]));
        }
    });
    p.put(Tuple::new(t, vec![Value::Int(5)]));
    let prog = Arc::new(p.build().unwrap());
    let mut config = EngineConfig::sequential();
    config.enforce_causality = false;
    let mut engine = Engine::new(prog, config);
    engine.run().unwrap();
    assert_eq!(engine.gamma().total_len(), 2);
}

#[test]
fn type_checking_can_be_disabled_for_speed() {
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| b.col_int("x").orderby(&[seq("x")]));
    p.put(Tuple::new(t, vec![Value::Int(1)]));
    let prog = Arc::new(p.build().unwrap());
    let mut config = EngineConfig::sequential();
    config.type_check = false;
    let mut engine = Engine::new(prog, config);
    engine.run().unwrap();
    assert_eq!(engine.gamma().total_len(), 1);
}

/// A small two-table run serialized through the real writer — the
/// corpus seed for the snapshot-reader fuzz tests below.
fn snapshot_corpus() -> Vec<u8> {
    let mut p = ProgramBuilder::new();
    let a = p.table("A", |b| {
        b.col_int("t")
            .col_double("v")
            .col_str("tag")
            .col_bool("on")
            .orderby(&[strat("A"), seq("t")])
    });
    let b = p.table("B", |b| b.col_int("x").orderby(&[strat("B"), seq("x")]));
    p.order(&["A", "B"]);
    p.rule("copy", a, move |ctx, tr| {
        ctx.put(Tuple::new(b, vec![Value::Int(tr.int(0) + 1)]));
    });
    for i in 0..6 {
        p.put(Tuple::new(
            a,
            vec![
                Value::Int(i),
                Value::Double(i as f64 * 0.5),
                Value::Str(format!("tag{i}").into()),
                Value::Bool(i % 2 == 0),
            ],
        ));
    }
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(prog, EngineConfig::sequential());
    engine.run().unwrap();
    let path = std::env::temp_dir().join(format!(
        "jstar-validation-corpus-{}-{:?}.jsnap",
        std::process::id(),
        std::thread::current().id()
    ));
    engine.snapshot(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn snapshot_reader_accepts_the_unmangled_corpus() {
    let bytes = snapshot_corpus();
    let snap = jstar_core::persist::read_snapshot_bytes(&bytes).unwrap();
    assert_eq!(snap.tables.len(), 2);
    assert_eq!(snap.tables[0].tuples.len(), 6);
    assert_eq!(snap.tables[1].tuples.len(), 6);
}

#[test]
fn snapshot_reader_rejects_every_truncation_without_panicking() {
    let bytes = snapshot_corpus();
    for len in 0..bytes.len() {
        assert!(
            jstar_core::persist::read_snapshot_bytes(&bytes[..len]).is_err(),
            "truncation to {len}/{} bytes must be rejected",
            bytes.len()
        );
    }
}

#[test]
fn snapshot_reader_rejects_every_single_bit_flip_without_panicking() {
    // The trailing checksum covers every preceding byte (including the
    // footer magic), so no single-bit corruption anywhere in the image
    // may survive — and none may panic the reader.
    let bytes = snapshot_corpus();
    let mut mangled = bytes.clone();
    for pos in 0..bytes.len() {
        for bit in 0..8 {
            mangled[pos] ^= 1 << bit;
            assert!(
                jstar_core::persist::read_snapshot_bytes(&mangled).is_err(),
                "bit {bit} of byte {pos} flipped: must be rejected"
            );
            mangled[pos] = bytes[pos];
        }
    }
}

#[test]
fn snapshot_reader_rejects_trailing_garbage_and_alien_bytes() {
    let mut bytes = snapshot_corpus();
    bytes.extend_from_slice(b"junk");
    assert!(jstar_core::persist::read_snapshot_bytes(&bytes).is_err());
    assert!(jstar_core::persist::read_snapshot_bytes(b"").is_err());
    assert!(jstar_core::persist::read_snapshot_bytes(b"JSTARSNP").is_err());
    let alien: Vec<u8> = (0..512u32).map(|i| (i * 31 % 251) as u8).collect();
    assert!(jstar_core::persist::read_snapshot_bytes(&alien).is_err());
}

#[test]
fn run_report_exposes_elapsed_and_output() {
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| b.col_int("x").orderby(&[seq("x")]));
    p.rule("say", t, |ctx, _| ctx.println("hi"));
    p.put(Tuple::new(t, vec![Value::Int(1)]));
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(prog, EngineConfig::sequential());
    let report = engine.run().unwrap();
    assert_eq!(report.output, vec!["hi"]);
    assert!(report.elapsed.as_nanos() > 0);
    assert_eq!(engine.output(), vec!["hi"]);
}
