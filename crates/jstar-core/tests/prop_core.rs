//! Property-based tests for the core runtime data structures.

use jstar_core::causality::linear::{satisfiable, Constraint, LinExpr, Rational};
use jstar_core::delta::{DeltaTree, FlatDelta, ShardedInbox};
use jstar_core::gamma::{BTreeStore, ConcurrentOrderedStore, HashStore, InsertOutcome, TableStore};
use jstar_core::orderby::{KeyPart, OrderKey};
use jstar_core::schema::{TableDefBuilder, TableId};
use jstar_core::tuple::Tuple;
use jstar_core::value::Value;
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::collections::HashSet;
use std::sync::Arc;
use std::sync::OnceLock;

/// One shared pool for the partitioned-merge properties: spinning
/// threads per proptest case would dominate the run time.
fn merge_pool() -> &'static jstar_pool::ThreadPool {
    static POOL: OnceLock<jstar_pool::ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| jstar_pool::ThreadPool::new(4))
}

fn arb_key() -> impl Strategy<Value = OrderKey> {
    prop::collection::vec(
        prop_oneof![
            (0u32..4).prop_map(KeyPart::Strat),
            (-20i64..20).prop_map(|v| KeyPart::Seq(Value::Int(v))),
        ],
        0..4,
    )
    .prop_map(OrderKey)
}

proptest! {
    /// OrderKey comparison is a total order: antisymmetric & transitive.
    #[test]
    fn order_key_total_order(a in arb_key(), b in arb_key(), c in arb_key()) {
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    /// The Delta tree behaves exactly like a reference model: a map from
    /// key to set of tuples, popped in key order.
    #[test]
    fn delta_tree_matches_reference_model(
        inserts in prop::collection::vec((arb_key(), -50i64..50), 0..200)
    ) {
        // Keys of mismatched shapes can coexist; restrict to homogeneous
        // 2-part keys to mirror real programs.
        let mut tree = DeltaTree::new();
        let mut model: BTreeMap<OrderKey, HashSet<i64>> = BTreeMap::new();
        for (key, v) in &inserts {
            let key = OrderKey(vec![
                KeyPart::Strat(0),
                key.0.first().cloned().unwrap_or(KeyPart::Strat(0)),
            ]);
            let tuple = Tuple::new(TableId(0), vec![Value::Int(*v)]);
            let fresh_tree = tree.insert(&key, tuple);
            let fresh_model = model.entry(key).or_default().insert(*v);
            prop_assert_eq!(fresh_tree, fresh_model);
        }
        let model_len: usize = model.values().map(|s| s.len()).sum();
        prop_assert_eq!(tree.len(), model_len);
        for (key, set) in model {
            let (k, class) = tree.pop_min_class().expect("model non-empty");
            prop_assert_eq!(&k, &key);
            let got: HashSet<i64> = class.iter().map(|t| t.int(0)).collect();
            prop_assert_eq!(got, set);
        }
        prop_assert!(tree.pop_min_class().is_none());
    }

    /// `merge_partitioned` + `pop_min_class` yields the exact sequence of
    /// the sequential insert path for arbitrary key/tuple batches — same
    /// keys in the same order, same class contents, same dedup counts —
    /// whatever the partition count, the merge threshold (parallel or
    /// sequential fallback), or which staging shard each entry arrived
    /// through. This is the order-identity obligation of the partitioned
    /// coordinator drain.
    #[test]
    fn merge_partitioned_pops_identically_to_sequential(
        inserts in prop::collection::vec(
            (0u32..3, -10i64..10, 0u32..2, -30i64..30),
            0..300,
        ),
        partitions_pow in 0u32..5,
        threshold_pick in 0u32..3,
    ) {
        let partitions = 1usize << partitions_pow;
        let threshold = [1usize, 64, usize::MAX][threshold_pick as usize];
        let entries: Vec<(OrderKey, Tuple)> = inserts
            .iter()
            .map(|&(s, q, table, v)| {
                (
                    OrderKey(vec![KeyPart::Strat(s), KeyPart::Seq(Value::Int(q))]),
                    Tuple::new(TableId(table), vec![Value::Int(v)]),
                )
            })
            .collect();

        // Reference: plain sequential inserts in arrival order.
        let mut seq_tree = DeltaTree::new();
        let mut seq_flat = FlatDelta::new();
        let mut seq_inserted = 0u64;
        for (k, t) in &entries {
            if seq_tree.insert(k, t.clone()) {
                seq_inserted += 1;
            }
            seq_flat.insert(k, t.clone());
        }

        // Partitioned path: stage through the inbox (binning at push
        // time), drain per partition, merge on the pool.
        let inbox = ShardedInbox::with_partitioning(3, partitions, 2);
        for (i, (k, t)) in entries.iter().enumerate() {
            inbox.push(i % 4, k.clone(), t.clone());
        }
        let mut runs: Vec<Vec<(OrderKey, Tuple)>> =
            (0..inbox.partitions()).map(|_| Vec::new()).collect();
        inbox.drain_partitions(&mut runs);
        let mut runs_flat = runs.clone();

        let mut by_table = vec![0u64; 2];
        let mut par_tree = DeltaTree::new();
        let inserted =
            par_tree.merge_partitioned(&mut runs, Some(merge_pool()), &mut by_table, threshold);
        prop_assert_eq!(inserted as u64, seq_inserted);
        prop_assert_eq!(by_table.iter().sum::<u64>(), seq_inserted);
        prop_assert_eq!(par_tree.len(), seq_tree.len());

        let mut by_table_flat = vec![0u64; 2];
        let mut par_flat = FlatDelta::new();
        par_flat.merge_partitioned(
            &mut runs_flat,
            Some(merge_pool()),
            &mut by_table_flat,
            threshold,
        );

        // Identical extraction sequence across all four structures.
        loop {
            match (
                seq_tree.pop_min_class(),
                par_tree.pop_min_class(),
                seq_flat.pop_min_class(),
                par_flat.pop_min_class(),
            ) {
                (None, None, None, None) => break,
                (Some((k0, mut c0)), Some((k1, mut c1)), Some((k2, mut c2)), Some((k3, mut c3))) => {
                    prop_assert_eq!(&k0, &k1);
                    prop_assert_eq!(&k0, &k2);
                    prop_assert_eq!(&k0, &k3);
                    c0.sort();
                    c1.sort();
                    c2.sort();
                    c3.sort();
                    prop_assert_eq!(&c0, &c1);
                    prop_assert_eq!(&c0, &c2);
                    prop_assert_eq!(&c0, &c3);
                }
                other => prop_assert!(false, "structures disagree on emptiness: {other:?}"),
            }
        }
    }

    /// All three generic stores agree with a reference set under random
    /// insert sequences (set semantics + primary key enforcement).
    #[test]
    fn stores_agree_with_reference(
        ops in prop::collection::vec((0i64..20, 0i64..5), 1..150)
    ) {
        let def = Arc::new(
            TableDefBuilder::standalone("T")
                .col_int("k")
                .col_int("v")
                .key(1)
                .build_def(TableId(0)),
        );
        let stores: Vec<Box<dyn TableStore>> = vec![
            Box::new(BTreeStore::new(Arc::clone(&def))),
            Box::new(ConcurrentOrderedStore::new(Arc::clone(&def), 4)),
            Box::new(HashStore::new(Arc::clone(&def), vec![0], 4)),
        ];
        // Reference: first write wins per key.
        let mut reference: BTreeMap<i64, i64> = BTreeMap::new();
        let mut expected: Vec<InsertOutcome> = Vec::new();
        for &(k, v) in &ops {
            let outcome = match reference.get(&k) {
                None => {
                    reference.insert(k, v);
                    InsertOutcome::Fresh
                }
                Some(&old) if old == v => InsertOutcome::Duplicate,
                Some(_) => InsertOutcome::KeyConflict,
            };
            expected.push(outcome);
        }
        for store in &stores {
            for (&(k, v), want) in ops.iter().zip(&expected) {
                let t = Tuple::new(TableId(0), vec![Value::Int(k), Value::Int(v)]);
                prop_assert_eq!(store.insert(t), *want);
            }
            prop_assert_eq!(store.len(), reference.len());
        }
    }

    /// The FM solver is sound: whenever it says UNSAT, no integer point in
    /// a sampled grid satisfies the system (3 variables).
    #[test]
    fn fm_unsat_implies_no_integer_point(
        raw in prop::collection::vec(
            (-3i64..=3, -3i64..=3, -3i64..=3, -6i64..=6, any::<bool>()),
            1..6,
        )
    ) {
        let constraints: Vec<Constraint> = raw
            .iter()
            .map(|&(a, b, c, k, strict)| {
                let expr = LinExpr::var(0).scale(Rational::int(a))
                    + LinExpr::var(1).scale(Rational::int(b))
                    + LinExpr::var(2).scale(Rational::int(c))
                    + LinExpr::constant(-k);
                Constraint { expr, strict }
            })
            .collect();
        if !satisfiable(&constraints) {
            for x in -8i64..=8 {
                for y in -8i64..=8 {
                    for z in -8i64..=8 {
                        let all_hold = raw.iter().all(|&(a, b, c, k, strict)| {
                            let v = a * x + b * y + c * z - k;
                            if strict { v < 0 } else { v <= 0 }
                        });
                        prop_assert!(
                            !all_hold,
                            "FM said unsat but ({x},{y},{z}) satisfies the system"
                        );
                    }
                }
            }
        }
    }

    /// Value ordering is total and consistent with equality/hashing.
    #[test]
    fn value_order_consistency(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a == b {
            prop_assert_eq!(a.cmp(&b), Ordering::Equal);
            use std::hash::{Hash, Hasher};
            let mut ha = std::collections::hash_map::DefaultHasher::new();
            let mut hb = std::collections::hash_map::DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Double),
        "[a-z]{0,6}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
    ]
}
