//! Concurrency stress tests for the reservation-based (claim-then-
//! publish) Gamma stores.
//!
//! The lock-free insert path must uphold, under heavy multi-threaded
//! contention, exactly what the locked path guaranteed:
//!
//! * no tuple is ever dropped — every distinct tuple reported `Fresh`
//!   by exactly one inserter and present afterwards;
//! * no tuple is ever duplicated — racing equal inserts produce one
//!   `Fresh` and the rest `Duplicate`;
//! * primary-key (`->`) conflicts produce exactly one `Fresh` per key;
//! * readers running *during* the insert storm never observe partial
//!   state: every tuple yielded by a scan or query is fully formed.
//!
//! These are loom-style schedules explored statistically: many rounds
//! of 8+ threads hammering overlapping ranges on fresh stores.

use jstar_core::gamma::{ConcurrentOrderedStore, HashStore, InsertOutcome, TableStore};
use jstar_core::orderby::{seq, strat};
use jstar_core::query::Query;
use jstar_core::schema::{TableDef, TableDefBuilder, TableId};
use jstar_core::tuple::Tuple;
use jstar_core::value::Value;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

const THREADS: usize = 8;

fn keyed_def() -> Arc<TableDef> {
    Arc::new(
        TableDefBuilder::standalone("K")
            .col_int("a")
            .col_int("b")
            .key(1)
            .orderby(&[strat("K"), seq("a")])
            .build_def(TableId(0)),
    )
}

fn set_def() -> Arc<TableDef> {
    Arc::new(
        TableDefBuilder::standalone("S")
            .col_int("x")
            .col_int("y")
            .orderby(&[strat("S")])
            .build_def(TableId(0)),
    )
}

fn kt(a: i64, b: i64) -> Tuple {
    Tuple::new(TableId(0), vec![Value::Int(a), Value::Int(b)])
}

/// Every store under test, built fresh.
fn stores() -> Vec<(&'static str, Arc<dyn TableStore>)> {
    vec![
        (
            "concurrent-ordered",
            Arc::new(ConcurrentOrderedStore::new(keyed_def(), 4)) as Arc<dyn TableStore>,
        ),
        (
            "hash-on-key",
            Arc::new(HashStore::new(keyed_def(), vec![0], 4)),
        ),
        (
            "hash-keyless",
            Arc::new(HashStore::new(set_def(), vec![0], 4)),
        ),
    ]
}

/// 8 threads insert heavily-overlapping tuple ranges: each distinct
/// tuple must come back `Fresh` exactly once and never be dropped.
#[test]
fn no_drops_no_duplicates_under_contention() {
    let distinct = 2_000i64;
    for round in 0..4 {
        for (name, store) in stores() {
            let fresh = AtomicUsize::new(0);
            let dups = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for thread in 0..THREADS {
                    let store = Arc::clone(&store);
                    let (fresh, dups) = (&fresh, &dups);
                    s.spawn(move || {
                        // Offset starts so threads collide mid-range.
                        for i in 0..distinct {
                            let a = (i + thread as i64 * 251 + round) % distinct;
                            match store.insert(kt(a, a * 2)) {
                                InsertOutcome::Fresh => {
                                    fresh.fetch_add(1, Ordering::Relaxed);
                                }
                                InsertOutcome::Duplicate => {
                                    dups.fetch_add(1, Ordering::Relaxed);
                                }
                                InsertOutcome::KeyConflict => {
                                    panic!("{name}: unexpected key conflict")
                                }
                            }
                        }
                    });
                }
            });
            assert_eq!(
                fresh.load(Ordering::Relaxed),
                distinct as usize,
                "{name}: every distinct tuple fresh exactly once"
            );
            assert_eq!(
                dups.load(Ordering::Relaxed),
                THREADS * distinct as usize - distinct as usize,
                "{name}: every other insert a duplicate"
            );
            assert_eq!(store.len(), distinct as usize, "{name}: nothing dropped");
            for a in 0..distinct {
                assert!(store.contains(&kt(a, a * 2)), "{name}: {a} present");
            }
        }
    }
}

/// Racing same-key different-value inserts: the `->` invariant admits
/// exactly one winner per key; everyone else sees `KeyConflict`.
#[test]
fn key_conflicts_have_exactly_one_winner() {
    let keys = 500i64;
    for _round in 0..4 {
        for (name, store) in stores() {
            if name == "hash-keyless" {
                continue; // no key declared — nothing to conflict
            }
            let fresh = AtomicUsize::new(0);
            let conflicts = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for thread in 0..THREADS {
                    let store = Arc::clone(&store);
                    let (fresh, conflicts) = (&fresh, &conflicts);
                    s.spawn(move || {
                        for a in 0..keys {
                            // Each thread proposes a different value for
                            // the same key.
                            match store.insert(kt(a, 10_000 + thread as i64)) {
                                InsertOutcome::Fresh => {
                                    fresh.fetch_add(1, Ordering::Relaxed);
                                }
                                InsertOutcome::KeyConflict => {
                                    conflicts.fetch_add(1, Ordering::Relaxed);
                                }
                                InsertOutcome::Duplicate => {
                                    panic!("{name}: values are all distinct")
                                }
                            }
                        }
                    });
                }
            });
            assert_eq!(
                fresh.load(Ordering::Relaxed),
                keys as usize,
                "{name}: one winner per key"
            );
            assert_eq!(
                conflicts.load(Ordering::Relaxed),
                (THREADS - 1) * keys as usize,
                "{name}: everyone else conflicted"
            );
            assert_eq!(store.len(), keys as usize);
        }
    }
}

/// Readers scanning and querying *during* the insert storm never see a
/// partially published tuple: every yielded row decodes to one of the
/// values some writer actually inserted, and the set only grows.
#[test]
fn readers_never_observe_partial_publishes() {
    for (name, store) in stores() {
        let stop = AtomicBool::new(false);
        let distinct = 3_000i64;
        std::thread::scope(|s| {
            // Writers.
            for thread in 0..THREADS {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for i in 0..distinct {
                        let a = (i * 7 + thread as i64) % distinct;
                        store.insert(kt(a, a * 3 + 1));
                    }
                });
            }
            // Readers: full scans plus point queries while writers run.
            for _ in 0..2 {
                let store = Arc::clone(&store);
                let stop = &stop;
                s.spawn(move || {
                    let mut max_seen = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let mut seen = 0usize;
                        store.for_each(&mut |t| {
                            seen += 1;
                            // Fully-formed or not visible at all.
                            assert_eq!(t.fields().len(), 2, "partial tuple observed");
                            let a = t.int(0);
                            assert_eq!(t.int(1), a * 3 + 1, "torn tuple observed");
                            true
                        });
                        assert!(seen >= max_seen, "the visible set never shrinks");
                        max_seen = seen;
                        let probe = Query::on(TableId(0)).eq(0, 42i64);
                        store.query(&probe, &mut |t| {
                            assert_eq!(t.int(0), 42);
                            assert_eq!(t.int(1), 42 * 3 + 1);
                            true
                        });
                    }
                });
            }
            // Writers finish first (scope join requires stopping readers).
            // Give readers a moment of post-quiescence scanning, then stop.
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(50));
                stop.store(true, Ordering::Relaxed);
            });
        });
        assert_eq!(store.len(), distinct as usize, "{name}");
    }
}

/// Retain (lifetime hints) racing a full scan: tombstoned tuples vanish
/// from every read path without disturbing survivors.
#[test]
fn retain_under_concurrent_readers() {
    for (name, store) in stores() {
        for a in 0..2_000i64 {
            store.insert(kt(a, a * 2));
        }
        std::thread::scope(|s| {
            let st = Arc::clone(&store);
            s.spawn(move || st.retain(&|t| t.int(0) % 2 == 0));
            let st = Arc::clone(&store);
            s.spawn(move || {
                for _ in 0..20 {
                    st.for_each(&mut |t| {
                        assert_eq!(t.int(1), t.int(0) * 2, "torn tuple during retain");
                        true
                    });
                }
            });
        });
        assert_eq!(store.len(), 1_000, "{name}: odd tuples tombstoned");
        assert!(store.contains(&kt(4, 8)), "{name}");
        assert!(!store.contains(&kt(5, 10)), "{name}");
    }
}
