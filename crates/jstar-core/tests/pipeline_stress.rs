//! Stress tests for the pipelined coordinator's epoch machinery: 8
//! worker threads staging at full rate while the coordinator closes
//! epochs mid-execution, rides their subtree builds on the background
//! lane, and (at depth ≥ 2) speculatively extracts the next class and
//! rolls it back under adversarial merges.
//!
//! The determinism *properties* live in `prop_engine.rs`; these tests
//! hammer one adversarial configuration — every class forked
//! (`inline_classes_up_to(0)`), every epoch merged in parallel
//! (`parallel_merge_from(1)`), wide classes so the overlap window is
//! actually open — and assert exact agreement with the sequential
//! engine across repeated runs.

use jstar_core::prelude::*;
use std::sync::Arc;

/// A fan-out program with deliberately wide equivalence classes: every
/// `(t, v)` tuple of generation `t` puts `fanout` tuples of generation
/// `t + 1`, values folded modulo `modp`, until `horizon`. All tuples of
/// one generation share an order key, so each step executes a class of
/// up to `modp` tuples while staging up to `class × fanout` — exactly
/// the shape that keeps the epoch pipeline busy.
fn fanout_program(fanout: i64, modp: i64, horizon: i64, seeds: i64) -> Arc<Program> {
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| {
        b.col_int("t").col_int("v").orderby(&[strat("T"), seq("t")])
    });
    p.rule("fan", t, move |ctx, tr| {
        if tr.int(0) < horizon {
            for k in 0..fanout {
                ctx.put(Tuple::new(
                    t,
                    vec![
                        Value::Int(tr.int(0) + 1),
                        Value::Int((tr.int(1) * 31 + 7 * k + 1).rem_euclid(modp)),
                    ],
                ));
            }
        }
    });
    for s in 0..seeds {
        p.put(Tuple::new(t, vec![Value::Int(0), Value::Int(s)]));
    }
    Arc::new(p.build().unwrap())
}

fn canonical(eng: &Engine, table: TableId) -> Vec<Tuple> {
    let mut all = eng.gamma().collect(&Query::on(table));
    all.sort();
    all
}

#[test]
fn eight_thread_epoch_swap_stress() {
    let prog = fanout_program(6, 500, 40, 4);
    let table = prog.table_id("T").unwrap();

    let mut seq_eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
    let seq_report = seq_eng.run().unwrap();
    let want = canonical(&seq_eng, table);
    assert!(want.len() > 1000, "the stress load must be non-trivial");

    // Repeated runs: epoch-swap/merge interleavings differ every time;
    // the result must not.
    for round in 0..5 {
        let mut eng = Engine::new(
            Arc::clone(&prog),
            EngineConfig::parallel(8)
                .pipeline_depth(1)
                .inline_classes_up_to(0)
                .parallel_merge_from(1),
        );
        let report = eng.run().unwrap();
        assert_eq!(
            canonical(&eng, table),
            want,
            "round {round}: gamma diverged from sequential"
        );
        assert_eq!(
            report.tuples_processed, seq_report.tuples_processed,
            "round {round}: tuple counts diverged"
        );
        assert_eq!(
            report.steps, seq_report.steps,
            "round {round}: pop schedule diverged"
        );
    }
}

/// A two-horizon fan-out built to ambush the lookahead: every `(t, v)`
/// tuple puts `fanout` tuples at `t + 2` (wide far classes) and, for a
/// third of values, one tuple at `t + 1` (a sparse near class). The
/// class prepared at a step's window start is therefore the `t + 1` or
/// `t + 2` class, and the step's own staging always includes keys at or
/// below it — every non-final forked step deterministically invalidates
/// its speculation at *some* absorb (mid-window or at the boundary),
/// whatever the thread interleaving. Staging is pure puts (no queries),
/// so the pop schedule itself is deterministic and comparable across
/// configurations.
fn ambush_program(fanout: i64, modp: i64, horizon: i64, seeds: i64) -> Arc<Program> {
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| {
        b.col_int("t").col_int("v").orderby(&[strat("T"), seq("t")])
    });
    p.rule("fan", t, move |ctx, tr| {
        if tr.int(0) < horizon {
            for k in 0..fanout {
                ctx.put(Tuple::new(
                    t,
                    vec![
                        Value::Int(tr.int(0) + 2),
                        Value::Int((tr.int(1) * 37 + 11 * k + 1).rem_euclid(modp)),
                    ],
                ));
            }
            if tr.int(1) % 3 == 0 {
                ctx.put(Tuple::new(
                    t,
                    vec![Value::Int(tr.int(0) + 1), Value::Int(tr.int(1) + 1)],
                ));
            }
        }
    });
    for s in 0..seeds {
        p.put(Tuple::new(t, vec![Value::Int(0), Value::Int(s * 3)]));
    }
    Arc::new(p.build().unwrap())
}

#[test]
fn eight_thread_lookahead_invalidation_stress() {
    let prog = ambush_program(6, 400, 40, 4);
    let table = prog.table_id("T").unwrap();

    let mut seq_eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
    let seq_report = seq_eng.run().unwrap();
    let want = canonical(&seq_eng, table);
    assert!(want.len() > 1000, "the stress load must be non-trivial");

    // Repeated runs at both lookahead depths: the speculation /
    // invalidation interleavings differ every time; the pop schedule
    // and fixpoint must not.
    for round in 0..3 {
        for depth in [2usize, 4] {
            let mut eng = Engine::new(
                Arc::clone(&prog),
                EngineConfig::parallel(8)
                    .pipeline_depth(depth)
                    .inline_classes_up_to(0)
                    .parallel_merge_from(1),
            );
            let report = eng.run().unwrap();
            assert_eq!(report.pipeline_depth, depth);
            assert_eq!(
                canonical(&eng, table),
                want,
                "round {round} depth {depth}: gamma diverged from sequential"
            );
            assert_eq!(
                report.tuples_processed, seq_report.tuples_processed,
                "round {round} depth {depth}: tuple counts diverged"
            );
            assert_eq!(
                report.steps, seq_report.steps,
                "round {round} depth {depth}: pop schedule diverged"
            );
            assert!(
                report.lookahead_hits + report.lookahead_misses > 0,
                "round {round} depth {depth}: the lookahead never engaged"
            );
            // Every non-final forked step stages keys at or below its
            // window-start speculation, so invalidations are a
            // certainty of the program shape, not of thread timing.
            assert!(
                report.lookahead_misses > 0,
                "round {round} depth {depth}: the ambush produced no invalidations"
            );
        }
    }
}

#[test]
fn pipelined_run_accounts_overlap_consistently() {
    // With record_steps on, the timers must partition cleanly: serial
    // drain = partition + merge, and overlap only ever accrues when
    // pipelining is on.
    let prog = fanout_program(6, 400, 30, 4);
    for depth in [0usize, 1] {
        let mut eng = Engine::new(
            Arc::clone(&prog),
            EngineConfig::parallel(8)
                .pipeline_depth(depth)
                .inline_classes_up_to(0)
                .parallel_merge_from(1)
                .record_steps(),
        );
        let report = eng.run().unwrap();
        assert_eq!(
            report.drain_time,
            report.partition_time + report.merge_time,
            "serial drain must be the sum of its phases"
        );
        if depth == 0 {
            assert_eq!(report.overlap_time, std::time::Duration::ZERO);
        }
        assert!((0.0..=1.0).contains(&report.overlap_fraction()));
        assert!((0.0..=1.0).contains(&report.drain_fraction()));
    }
}

#[test]
fn pipelining_composes_with_lifetime_hints_and_compaction() {
    // The maintain phase (hints + quiescent compaction) runs between
    // pipelined steps; surviving tuples must match the sequential
    // engine's under the same hint.
    let prog = fanout_program(5, 300, 30, 3);
    let table = prog.table_id("T").unwrap();
    let configure = |c: EngineConfig| {
        c.compact_tombstones_above(0.2)
            .lifetime_hint(table, 7, |t| t.int(0) >= 20)
    };

    let mut seq_eng = Engine::new(Arc::clone(&prog), configure(EngineConfig::sequential()));
    seq_eng.run().unwrap();
    let want = canonical(&seq_eng, table);

    let mut eng = Engine::new(
        Arc::clone(&prog),
        configure(
            EngineConfig::parallel(8)
                .pipeline_depth(1)
                .inline_classes_up_to(0)
                .parallel_merge_from(1),
        ),
    );
    eng.run().unwrap();
    assert_eq!(canonical(&eng, table), want);
    assert!(
        eng.stats().tables[table.index()].snapshot().compactions > 0,
        "the aggressive hint must trip compaction on the reservation store"
    );
}
