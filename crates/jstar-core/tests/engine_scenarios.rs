//! Engine integration scenarios beyond the unit tests: the §4 example
//! rule shape, multi-stage pipelines, aggregate helpers, `par` keys and
//! mixed optimisation flags.

use jstar_core::prelude::*;
use std::sync::Arc;

/// The §4 example rule:
/// ```text
/// foreach (Trigger trig) {
///   if (Cond) { put Tuple1(args1) }
///   else { val q1 = get min Tuple1(queryArgs); put Tuple2(args2) }
/// }
/// ```
/// with its three proof obligations (two puts, one strict query).
#[test]
fn section4_example_rule_runs_and_proves() {
    let mut p = ProgramBuilder::new();
    let trigger = p.table("Trigger", |b| {
        b.col_int("t")
            .col_bool("cond")
            .orderby(&[seq("t"), strat("Trig")])
    });
    let tuple1 = p.table("Tuple1", |b| {
        b.col_int("t")
            .col_int("v")
            .orderby(&[seq("t"), strat("One")])
    });
    let tuple2 = p.table("Tuple2", |b| {
        b.col_int("t")
            .col_int("minv")
            .orderby(&[seq("t"), strat("Two")])
    });
    p.order(&["One", "Trig", "Two"]);

    // Causality model: obligation 1 (put Tuple1 under Cond), obligation 2
    // (put Tuple2 under !Cond), obligation 3 (the min-query's timestamp is
    // strictly before the trigger).
    let mut cx = ModelCtx::new();
    let put1 = PutModel {
        out_table: "Tuple1".into(),
        guard: vec![],
        bindings: cx.out("t").eq_(&(cx.trig("t") + 1)),
        label: "then-branch put".into(),
    };
    let put2 = PutModel {
        out_table: "Tuple2".into(),
        guard: vec![],
        bindings: cx.out("t").eq_(&cx.trig("t")),
        label: "else-branch put".into(),
    };
    let q1 = QueryModel {
        q_table: "Tuple1".into(),
        guard: vec![],
        bindings: vec![cx.q("t").lt(&cx.trig("t"))],
        label: "get min Tuple1".into(),
    };
    let model = CausalityModel {
        ctx: cx,
        invariants: vec![],
        puts: vec![put1, put2],
        queries: vec![q1],
    };

    p.rule_with_model("section4", trigger, model, move |ctx, trig| {
        let t = trig.int(0);
        if trig.bool(1) {
            ctx.put(Tuple::new(
                tuple1,
                vec![Value::Int(t + 1), Value::Int(t * 10)],
            ));
        } else {
            let minv = ctx.min_int(&Query::on(tuple1).lt(0, t), 1).unwrap_or(-1);
            ctx.put(Tuple::new(tuple2, vec![Value::Int(t), Value::Int(minv)]));
        }
    });

    // Triggers: cond=true at t=0,1; cond=false at t=5 — the min over
    // Tuple1 rows below t=5 must see both earlier puts.
    p.put(Tuple::new(trigger, vec![Value::Int(0), Value::Bool(true)]));
    p.put(Tuple::new(trigger, vec![Value::Int(1), Value::Bool(true)]));
    p.put(Tuple::new(trigger, vec![Value::Int(5), Value::Bool(false)]));

    let prog = Arc::new(p.build().unwrap());
    prog.validate_strict()
        .expect("all three obligations proved");

    for config in [EngineConfig::sequential(), EngineConfig::parallel(4)] {
        let mut engine = Engine::new(Arc::clone(&prog), config);
        engine.run().unwrap();
        let t2 = engine.gamma().collect(&Query::on(tuple2));
        assert_eq!(t2.len(), 1);
        // min of {0*10, 1*10} = 0.
        assert_eq!(t2[0].int(1), 0);
    }
}

#[test]
fn aggregate_helpers_match_reducers() {
    let mut p = ProgramBuilder::new();
    let data = p.table("D", |b| {
        b.col_int("t").col_int("v").orderby(&[strat("D"), seq("t")])
    });
    let probe = p.table("P", |b| b.col_int("t").orderby(&[strat("P")]));
    p.order(&["D", "P"]);
    p.rule("probe", probe, move |ctx, _| {
        let q = Query::on(data);
        ctx.println(format!(
            "min={:?} max={:?} count={}",
            ctx.min_int(&q, 1),
            ctx.max_int(&q, 1),
            ctx.count(&q)
        ));
    });
    for (t, v) in [(0, 7), (1, -3), (2, 12)] {
        p.put(Tuple::new(data, vec![Value::Int(t), Value::Int(v)]));
    }
    p.put(Tuple::new(probe, vec![Value::Int(0)]));
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(prog, EngineConfig::sequential());
    let report = engine.run().unwrap();
    assert_eq!(report.output, vec!["min=Some(-3) max=Some(12) count=3"]);
}

#[test]
fn par_component_collapses_to_one_class() {
    // orderby (W, par id): all workers in one equivalence class.
    let mut p = ProgramBuilder::new();
    let w = p.table("W", |b| b.col_int("id").orderby(&[strat("W"), par("id")]));
    p.rule("noop", w, |_, _| {});
    for i in 0..32 {
        p.put(Tuple::new(w, vec![Value::Int(i)]));
    }
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(prog, EngineConfig::parallel(4).record_steps());
    let report = engine.run().unwrap();
    assert_eq!(report.steps, 1, "one wave");
    assert_eq!(
        engine
            .stats()
            .max_class
            .load(std::sync::atomic::Ordering::Relaxed),
        32
    );
}

#[test]
fn seq_component_orders_waves() {
    // orderby (W, seq round, par id): rounds are barriers, ids parallel.
    let mut p = ProgramBuilder::new();
    let w = p.table("W", |b| {
        b.col_int("round")
            .col_int("id")
            .orderby(&[strat("W"), seq("round"), par("id")])
    });
    let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let log2 = Arc::clone(&log);
    p.rule("log", w, move |_, t| {
        log2.lock().push((t.int(0), t.int(1)));
    });
    for round in 0..4 {
        for id in 0..8 {
            p.put(Tuple::new(w, vec![Value::Int(round), Value::Int(id)]));
        }
    }
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(prog, EngineConfig::parallel(4));
    let report = engine.run().unwrap();
    assert_eq!(report.steps, 4, "one step per round");
    let seen = log.lock();
    // Rounds must be monotone in execution order.
    let rounds: Vec<i64> = seen.iter().map(|&(r, _)| r).collect();
    assert!(rounds.windows(2).all(|w| w[0] <= w[1]), "{rounds:?}");
    assert_eq!(seen.len(), 32);
}

#[test]
fn three_stage_pipeline_with_all_flags() {
    // Source -> Middle (noDelta) -> Sink (noGamma for Source), with hash
    // stores — every §5.1 flag at once on a multi-rule program.
    let mut p = ProgramBuilder::new();
    let src = p.table("Src", |b| b.col_int("i").orderby(&[strat("S")]));
    let mid = p.table("Mid", |b| b.col_int("i").orderby(&[strat("M")]));
    let sink = p.table("Sink", |b| b.col_int("i").orderby(&[strat("K")]));
    p.order(&["S", "M", "K"]);
    p.rule("a", src, move |ctx, t| {
        ctx.put(Tuple::new(mid, vec![Value::Int(t.int(0) * 2)]));
    });
    p.rule("b", mid, move |ctx, t| {
        ctx.put(Tuple::new(sink, vec![Value::Int(t.int(0) + 1)]));
    });
    for i in 0..20 {
        p.put(Tuple::new(src, vec![Value::Int(i)]));
    }
    let prog = Arc::new(p.build().unwrap());
    let config = EngineConfig::parallel(4).no_delta(mid).no_gamma(src).store(
        sink,
        StoreKind::Hash {
            index_fields: vec!["i".into()],
            shards: 4,
        },
    );
    let mut engine = Engine::new(Arc::clone(&prog), config);
    engine.run().unwrap();
    let mut got: Vec<i64> = engine
        .gamma()
        .collect(&Query::on(sink))
        .iter()
        .map(|t| t.int(0))
        .collect();
    got.sort();
    let want: Vec<i64> = (0..20).map(|i| i * 2 + 1).collect();
    assert_eq!(got, want);
}

#[test]
fn no_delta_chain_fires_transitively_inline() {
    // A -> B -> C with both B and C noDelta: the whole chain runs inside
    // the A step.
    let mut p = ProgramBuilder::new();
    let a = p.table("A", |b| b.col_int("i").orderby(&[strat("A")]));
    let bt = p.table("B", |b| b.col_int("i").orderby(&[strat("B")]));
    let ct = p.table("C", |b| b.col_int("i").orderby(&[strat("C")]));
    p.order(&["A", "B", "C"]);
    p.rule("ab", a, move |ctx, t| {
        ctx.put(Tuple::new(bt, vec![t.get(0).clone()]));
    });
    p.rule("bc", bt, move |ctx, t| {
        ctx.put(Tuple::new(ct, vec![t.get(0).clone()]));
    });
    p.put(Tuple::new(a, vec![Value::Int(1)]));
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(
        Arc::clone(&prog),
        EngineConfig::sequential().no_delta(bt).no_delta(ct),
    );
    let report = engine.run().unwrap();
    assert_eq!(report.steps, 1, "B and C processed inline within A's step");
    assert_eq!(engine.gamma().collect(&Query::on(ct)).len(), 1);
}

#[test]
fn rule_internal_parallel_loops_match_sequential() {
    // §5.2: parallel iteration/reduction inside a rule body must produce
    // the same answers as the sequential forms.
    let mut p = ProgramBuilder::new();
    let data = p.table("D", |b| {
        b.col_int("i").col_int("v").orderby(&[strat("D"), seq("i")])
    });
    let go = p.table("Go", |b| b.col_int("x").orderby(&[strat("Go")]));
    p.order(&["D", "Go"]);
    p.rule("aggregate", go, move |ctx, _| {
        let q = Query::on(data);
        let seq_stats = ctx.reduce(&q, &Statistics { field: 1 });
        let par_stats = ctx.reduce_parallel(&q, &Statistics { field: 1 });
        assert_eq!(seq_stats.count, par_stats.count);
        assert_eq!(seq_stats.sum, par_stats.sum);
        let seen = std::sync::atomic::AtomicU64::new(0);
        ctx.par_for_each_match(&q, |t| {
            seen.fetch_add(t.int(1) as u64, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(
            seen.load(std::sync::atomic::Ordering::Relaxed) as f64,
            seq_stats.sum
        );
        ctx.println(format!("sum {}", seq_stats.sum));
    });
    for i in 0..500 {
        p.put(Tuple::new(data, vec![Value::Int(i), Value::Int(i % 97)]));
    }
    p.put(Tuple::new(go, vec![Value::Int(0)]));
    let prog = Arc::new(p.build().unwrap());
    for config in [EngineConfig::sequential(), EngineConfig::parallel(4)] {
        let mut engine = Engine::new(Arc::clone(&prog), config);
        let report = engine.run().unwrap();
        assert_eq!(report.output.len(), 1);
    }
}

#[test]
fn errors_from_parallel_workers_abort_the_run() {
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| b.col_int("i").orderby(&[strat("T"), par("i")]));
    p.rule("fail-some", t, |ctx, tr| {
        if tr.int(0) == 13 {
            ctx.fail("unlucky tuple");
        }
    });
    for i in 0..64 {
        p.put(Tuple::new(t, vec![Value::Int(i)]));
    }
    let prog = Arc::new(p.build().unwrap());
    let err = Engine::new(prog, EngineConfig::parallel(4))
        .run()
        .unwrap_err();
    assert!(err.to_string().contains("unlucky"));
}
