//! Durability tests: snapshot/restore round trips, checkpoint fallback,
//! and — under `--features fault-inject` — the deterministic crash
//! matrix. Every injected crash point must leave the checkpoint
//! directory in a state from which restore + resume reproduces the
//! uninterrupted run's Gamma content hash bit for bit.

use jstar_core::error::JStarError;
use jstar_core::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fresh, unique scratch directory under `target/tmp` (removed by the
/// caller via [`Scratch`]'s drop; unique per test *and* per call so
/// parallel tests never share checkpoint files).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!(
            "persist_crash_{tag}_{}_{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The layered fan-out program from `prop_engine.rs`, fixed to a shape
/// that runs for dozens of steps with a non-empty Delta queue at most
/// checkpoints (tuples at `t + 1` are pending while `t` executes).
fn fan_program() -> Arc<Program> {
    let mut p = ProgramBuilder::new();
    let names = ["T0", "T1", "T2"];
    let ids: Vec<TableId> = names
        .iter()
        .map(|n| {
            p.table(n, |b| {
                b.col_int("t").col_int("v").orderby(&[strat(n), seq("t")])
            })
        })
        .collect();
    p.order(&names);
    for i in 0..2 {
        let next = ids[i + 1];
        p.rule(&format!("fan{i}"), ids[i], move |ctx, tr| {
            for k in 0..2 {
                let v = (tr.int(1) * 3 + 1 + k).rem_euclid(101);
                ctx.put(Tuple::new(
                    next,
                    vec![Value::Int(tr.int(0) + 1), Value::Int(v)],
                ));
            }
        });
    }
    let t0 = ids[0];
    p.rule("advance", t0, move |ctx, tr| {
        if tr.int(0) < 60 {
            ctx.put(Tuple::new(
                t0,
                vec![Value::Int(tr.int(0) + 1), Value::Int((tr.int(1) + 1) % 101)],
            ));
        }
    });
    for s in 0..3 {
        p.put(Tuple::new(t0, vec![Value::Int(0), Value::Int(s)]));
    }
    Arc::new(p.build().unwrap())
}

fn checkpointing_config(dir: &Path) -> EngineConfig {
    EngineConfig::parallel(2)
        .checkpoint(dir, 4)
        .checkpoint_keep(3)
}

/// The uninterrupted run's final content hash — the ground truth every
/// crash/restore/resume sequence must reproduce.
fn expected_hash(prog: &Arc<Program>) -> u64 {
    let mut eng = Engine::new(Arc::clone(prog), EngineConfig::parallel(2));
    eng.run().unwrap();
    eng.content_hash()
}

#[test]
fn snapshot_restore_roundtrip_reproduces_gamma() {
    let scratch = Scratch::new("roundtrip");
    let prog = fan_program();

    let mut eng = Engine::new(Arc::clone(&prog), EngineConfig::parallel(2));
    eng.run().unwrap();
    let snap = scratch.path().join("final.jsnap");
    eng.snapshot(&snap).unwrap();

    let mut restored = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
    restored.restore(&snap).unwrap();
    assert_eq!(restored.content_hash(), eng.content_hash());

    // A quiescent snapshot has no pending work: resuming is a no-op and
    // the hash is stable across the resume.
    restored.run().unwrap();
    assert_eq!(restored.content_hash(), eng.content_hash());

    for i in 0..prog.defs().len() {
        let q = Query::on(TableId(i as u32));
        let mut want = eng.gamma().collect(&q);
        let mut got = restored.gamma().collect(&q);
        want.sort();
        got.sort();
        assert_eq!(got, want, "table {i} contents diverged after restore");
    }
}

#[test]
fn checkpointed_run_reports_checkpoints_and_resumes_identically() {
    let scratch = Scratch::new("resume");
    let prog = fan_program();
    let expected = expected_hash(&prog);

    let mut eng = Engine::new(Arc::clone(&prog), checkpointing_config(scratch.path()));
    let report = eng.run().unwrap();
    assert!(
        report.checkpoints >= 2,
        "got {} checkpoints",
        report.checkpoints
    );
    assert!(report.checkpoint_time > std::time::Duration::ZERO);
    assert_eq!(eng.content_hash(), expected);

    // Resuming from the newest checkpoint replays the identical pop
    // schedule to the identical fixpoint.
    let mut resumed = Engine::new(Arc::clone(&prog), EngineConfig::parallel(2));
    resumed.restore_latest(scratch.path()).unwrap();
    resumed.run().unwrap();
    assert_eq!(resumed.content_hash(), expected);
}

#[test]
fn corrupt_newest_checkpoint_falls_back_to_previous() {
    let scratch = Scratch::new("fallback");
    let prog = fan_program();
    let expected = expected_hash(&prog);

    let mut eng = Engine::new(Arc::clone(&prog), checkpointing_config(scratch.path()));
    eng.run().unwrap();

    let files = jstar_core::persist::list_checkpoints(scratch.path()).unwrap();
    assert!(files.len() >= 2, "need a fallback file, got {files:?}");
    let newest = files.last().unwrap().clone();
    let second_newest = files[files.len() - 2].clone();

    // Flip one bit in the middle of the newest checkpoint.
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&newest, bytes).unwrap();

    let mut resumed = Engine::new(Arc::clone(&prog), EngineConfig::parallel(2));
    let outcome = resumed.restore_latest(scratch.path()).unwrap();
    assert_eq!(outcome.path, second_newest, "must fall back one file");
    assert_eq!(outcome.skipped.len(), 1);
    assert_eq!(outcome.skipped[0].0, newest);
    assert!(
        matches!(outcome.skipped[0].1, JStarError::CorruptSnapshot(_)),
        "corruption must be reported, got {:?}",
        outcome.skipped[0].1
    );

    resumed.run().unwrap();
    assert_eq!(resumed.content_hash(), expected);
}

#[test]
fn restore_from_other_schema_is_rejected_without_mutation() {
    let scratch = Scratch::new("schema");
    let prog = fan_program();
    let mut eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
    eng.run().unwrap();
    let snap = scratch.path().join("fan.jsnap");
    eng.snapshot(&snap).unwrap();

    let mut other = ProgramBuilder::new();
    let w = other.table("Walk", |b| {
        b.col_int("t")
            .col_int("v")
            .orderby(&[strat("Walk"), seq("t")])
    });
    other.order(&["Walk"]);
    other.put(Tuple::new(w, vec![Value::Int(0), Value::Int(0)]));
    let other = Arc::new(other.build().unwrap());

    let mut victim = Engine::new(Arc::clone(&other), EngineConfig::sequential());
    let before = victim.content_hash();
    let err = victim.restore(&snap).expect_err("must be rejected");
    assert!(
        matches!(err, JStarError::SchemaMismatch(_)),
        "wrong error: {err:?}"
    );
    assert_eq!(
        victim.content_hash(),
        before,
        "failed restore must not mutate"
    );

    // restore_latest aborts on schema mismatch instead of silently
    // falling back to an even older file.
    let dir = scratch.path().join("ckpts");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::copy(
        &snap,
        dir.join(jstar_core::persist::checkpoint_file_name(0)),
    )
    .unwrap();
    let err = victim.restore_latest(&dir).expect_err("must be rejected");
    assert!(matches!(err, JStarError::SchemaMismatch(_)));
}

#[test]
fn restore_latest_from_empty_dir_is_an_error() {
    let scratch = Scratch::new("empty");
    let prog = fan_program();
    let mut eng = Engine::new(prog, EngineConfig::sequential());
    assert!(eng.restore_latest(scratch.path()).is_err());
}

/// The crash matrix. One `#[test]` looping serially over every crash
/// point: the fault hook is thread-local state on the coordinator
/// thread, so points must not run concurrently within the process.
#[cfg(feature = "fault-inject")]
mod crash_matrix {
    use super::*;
    use jstar_core::persist::fault::{self, CrashSite};
    use std::collections::HashSet;

    /// Runs one crash → restore → resume cycle; returns the crash point
    /// that actually fired (None if the armed offset was never reached,
    /// in which case the run completed and its hash was still checked).
    fn crash_and_recover(
        prog: &Arc<Program>,
        expected: u64,
        site: CrashSite,
        offset: u64,
        label: &str,
    ) -> Option<(CrashSite, u64)> {
        let scratch = Scratch::new("matrix");
        fault::arm(site, offset);
        let mut eng = Engine::new(Arc::clone(prog), checkpointing_config(scratch.path()));
        let outcome = eng.run();
        let fired = fault::disarm();

        match fired {
            Some(point) => {
                assert!(
                    outcome.is_err(),
                    "[{label}] crash at {point:?} fired but run() returned Ok"
                );
                let mut resumed =
                    Engine::new(Arc::clone(prog), checkpointing_config(scratch.path()));
                // An Err here means the crash landed before any
                // checkpoint survived: recovery is then a cold start
                // from the program's initial tuples.
                let _ = resumed.restore_latest(scratch.path());
                resumed
                    .run()
                    .unwrap_or_else(|e| panic!("[{label}] resume after {point:?} failed: {e}"));
                assert_eq!(
                    resumed.content_hash(),
                    expected,
                    "[{label}] resumed hash diverged after crash at {point:?}"
                );
                Some(point)
            }
            None => {
                // Offset beyond everything the run ever wrote: the run
                // must have completed untouched.
                let report = outcome
                    .unwrap_or_else(|e| panic!("[{label}] unfired fault yet run failed: {e}"));
                assert!(report.checkpoints > 0);
                assert_eq!(eng.content_hash(), expected, "[{label}] hash diverged");
                None
            }
        }
    }

    fn record_failing_seed(seed: u64) {
        let path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("persist_crash_failing_seed.txt");
        let _ = std::fs::write(&path, format!("{seed}\n"));
    }

    #[test]
    fn every_crash_point_recovers_to_the_uninterrupted_hash() {
        let prog = fan_program();
        let expected = expected_hash(&prog);
        let mut fired: HashSet<(CrashSite, u64)> = HashSet::new();

        // Curated points: small offsets die inside the first checkpoint
        // (recovery is a cold start); large offsets let the countdown
        // span several checkpoints and die mid-write with intact older
        // files behind them (recovery is restore + resume).
        let curated: &[(CrashSite, u64)] = &[
            (CrashSite::Header, 0),
            (CrashSite::Header, 100),
            (CrashSite::TableSection, 0),
            (CrashSite::TableSection, 77),
            (CrashSite::TupleBytes, 0),
            (CrashSite::TupleBytes, 37),
            (CrashSite::TupleBytes, 2000),
            (CrashSite::PendingSection, 0),
            (CrashSite::PendingSection, 100),
            (CrashSite::Footer, 3),
            (CrashSite::Footer, 40),
            (CrashSite::Rename, 0),
        ];
        for &(site, offset) in curated {
            if let Some(p) = crash_and_recover(&prog, expected, site, offset, "curated") {
                fired.insert(p);
            }
        }

        // Seeded sweep: reproducible pseudo-random (site, offset) pairs.
        // A red run reports its seed and drops it in
        // target/tmp/persist_crash_failing_seed.txt for CI to upload.
        for seed in 0..16u64 {
            let (site, offset) = fault::arm_seeded(seed);
            fault::disarm();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crash_and_recover(&prog, expected, site, offset, &format!("seed {seed}"))
            }));
            match result {
                Ok(Some(p)) => {
                    fired.insert(p);
                }
                Ok(None) => {}
                Err(payload) => {
                    record_failing_seed(seed);
                    std::panic::resume_unwind(payload);
                }
            }
        }

        assert!(
            fired.len() >= 8,
            "matrix must exercise >= 8 distinct crash points, fired: {fired:?}"
        );
        let sites: HashSet<CrashSite> = fired.iter().map(|&(s, _)| s).collect();
        for must in [
            CrashSite::TupleBytes,
            CrashSite::PendingSection,
            CrashSite::Rename,
        ] {
            assert!(
                sites.contains(&must),
                "site {must:?} never fired: {fired:?}"
            );
        }
    }
}
